"""Render experiment outcomes to ``docs/RESULTS.md`` + CSV artifacts.

The markdown report is deliberately deterministic: every value comes
from the outcomes' rows (which round-trip through the artifact store),
runtimes are the *recorded* wall-clocks, and nothing in the output
depends on the clock, the host, or dict iteration order — so a
cache-warm re-render is byte-identical, which CI asserts.
"""

from __future__ import annotations

import csv
import os
import re
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..analysis.tables import format_cell
from .store import RunOutcome

#: The source paper, quoted in the report header.
PAPER_ID = "conf_isca_JinLHHZHZ24"


def github_slug(heading: str) -> str:
    """GitHub's anchor id for a markdown heading.

    Lowercase, markdown markup dropped (backticks/emphasis markers,
    links reduced to their text), anything that is not a word character,
    space, or hyphen removed, spaces become hyphens.  Literal
    underscores survive (GitHub keeps them).  The same algorithm lives
    in ``tools/check_links.py``, which validates the links this builds —
    ``tests/test_report.py`` asserts the two copies agree.
    """
    slug = heading.strip().lower()
    slug = re.sub(r"[`*]", "", slug)
    slug = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def _display(value: Any) -> str:
    """One markdown cell: stable float formatting, blanks for missing."""
    if value is None or value == "":
        return ""
    return format_cell(value)


def _table_columns(
    spec_columns: Sequence[str], rows: Sequence[Mapping[str, Any]]
) -> List[str]:
    """Declared columns (in declared order) then extras (sorted).

    Only columns that actually occur in ``rows`` are kept — with
    ``section_by`` experiments each section renders just its own part of
    the schema.  Extras sort alphabetically because stored rows carry
    sorted keys; the result is identical for fresh and store-served rows.
    """
    present = set()
    for row in rows:
        present.update(row.keys())
    columns = [column for column in spec_columns if column in present]
    columns += sorted(present - set(spec_columns))
    return columns


def markdown_table(
    rows: Sequence[Mapping[str, Any]], columns: Sequence[str]
) -> str:
    """A GitHub-flavored markdown table over the given columns."""
    if not rows:
        return "*(no rows)*"
    header = "| " + " | ".join(columns) + " |"
    ruler = "|" + "|".join("---" for _ in columns) + "|"
    lines = [header, ruler]
    for row in rows:
        cells = [_display(row.get(column)) for column in columns]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def _delta_rows(outcome: RunOutcome) -> List[Dict[str, Any]]:
    """Rows with the spec's repro-vs-paper delta columns appended.

    A delta column holds ``repro - paper`` (rounded) when both sides are
    numeric, blank where the paper does not report the cell.
    """
    spec = outcome.spec
    if not spec.deltas:
        return list(outcome.rows)
    augmented = []
    for row in outcome.rows:
        extended = dict(row)
        for label, repro_col, paper_col in spec.deltas:
            repro_val, paper_val = row.get(repro_col), row.get(paper_col)
            if isinstance(repro_val, (int, float)) and isinstance(
                paper_val, (int, float)
            ):
                extended[label] = round(repro_val - paper_val, 4)
            else:
                extended[label] = ""
        augmented.append(extended)
    return augmented


def _delta_columns(outcome: RunOutcome, columns: List[str]) -> List[str]:
    """Insert each delta column right after its paper-reference column."""
    ordered = list(columns)
    for label, _repro_col, paper_col in outcome.spec.deltas:
        if label in ordered:
            ordered.remove(label)
        if paper_col in ordered:
            ordered.insert(ordered.index(paper_col) + 1, label)
        else:
            ordered.append(label)
    return ordered


def _section_heading(outcome: RunOutcome) -> str:
    return f"{outcome.spec.id} · {outcome.spec.title}"


def _render_section(outcome: RunOutcome, csv_dir_rel: Optional[str]) -> List[str]:
    spec = outcome.spec
    lines = [f"## {_section_heading(outcome)}", ""]
    lines += [f"**Claim.** {spec.claim}", ""]
    lines += [f"**Grid.** {spec.grid}", ""]
    provenance = []
    if spec.compilers:
        provenance.append("compilers: " + ", ".join(spec.compilers))
    if spec.devices:
        provenance.append("devices: " + ", ".join(spec.devices))
    provenance.append(
        f"spec version {outcome.provenance.get('spec_version', '?')}"
    )
    lines += ["**Provenance.** " + "; ".join(provenance) + ".", ""]
    lines += [
        f"**Runtime.** {outcome.runtime_seconds:.2f} s "
        "(wall-clock recorded when the rows were computed; warm re-renders "
        "reuse the stored value).",
        "",
    ]
    rows = _delta_rows(outcome)
    if spec.section_by:
        groups: Dict[Any, List[Dict[str, Any]]] = {}
        for row in rows:
            groups.setdefault(row.get(spec.section_by), []).append(row)
        for key in sorted(groups, key=str):
            lines += [f"### {spec.id} ({spec.section_by}={key})", ""]
            group = groups[key]
            columns = _delta_columns(
                outcome, _table_columns(spec.columns, group)
            )
            lines += [markdown_table(group, columns), ""]
    else:
        columns = _delta_columns(outcome, _table_columns(spec.columns, rows))
        lines += [markdown_table(rows, columns), ""]
    if spec.deltas:
        pairings = "; ".join(
            f"`{label}` = `{repro_col}` − `{paper_col}`"
            for label, repro_col, paper_col in spec.deltas
        )
        lines += [f"Paper-delta columns: {pairings}.", ""]
    if csv_dir_rel is not None:
        csv_rel = f"{csv_dir_rel}/{spec.id}.csv"
        lines += [f"Rows as CSV: [`{csv_rel}`]({csv_rel})", ""]
    return lines


def render_markdown(
    outcomes: Sequence[RunOutcome],
    scale: str,
    quick: bool = False,
    csv_dir_rel: Optional[str] = "results",
) -> str:
    """The full RESULTS.md document for the given outcomes."""
    total_runtime = sum(outcome.runtime_seconds for outcome in outcomes)
    command = "repro report --quick" if quick else f"repro report --scale {scale}"
    lines = [
        f"# RESULTS — {PAPER_ID} reproduction",
        "",
        f"Every table and figure of {PAPER_ID}, regenerated by this repo's",
        f"experiment manifest (`repro.report`).  Generated with `{command}`",
        f"at scale `{scale}`"
        + (" (subsampled CI grids — see `docs/REPRODUCING.md` for the"
           " paper-scale commands)" if scale != "full" else "")
        + ".",
        "",
        "Regenerate with `repro report" + (" --quick" if quick else
                                           f" --scale {scale}") + "`; "
        "a cache-warm rerun is byte-identical (CI asserts this). "
        "`--check` additionally gates every pinned metric against drift.",
        "",
        "## Summary",
        "",
        "| experiment | kind | rows | recorded runtime |",
        "|---|---|---|---|",
    ]
    for outcome in outcomes:
        spec = outcome.spec
        anchor = github_slug(_section_heading(outcome))
        lines.append(
            f"| [{spec.id}](#{anchor}) | {spec.kind} | {len(outcome.rows)} "
            f"| {outcome.runtime_seconds:.2f} s |"
        )
    lines += [
        "",
        f"Total recorded runtime: {total_runtime:.2f} s.",
        "",
    ]
    for outcome in outcomes:
        lines += _render_section(outcome, csv_dir_rel)
    return "\n".join(lines).rstrip() + "\n"


def render_csv_artifacts(
    outcomes: Sequence[RunOutcome], directory: str
) -> List[str]:
    """One ``<id>.csv`` per outcome under ``directory``; returns paths.

    Column order matches the rendered table (minus the computed delta
    columns — CSVs carry the raw rows).  Rows with partial schemas
    (sectioned experiments) get empty cells for the columns they lack.
    """
    os.makedirs(directory, exist_ok=True)
    paths = []
    for outcome in outcomes:
        columns = _table_columns(outcome.spec.columns, outcome.rows)
        path = os.path.join(directory, f"{outcome.spec.id}.csv")
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(
                handle, fieldnames=columns, restval="", extrasaction="ignore"
            )
            writer.writeheader()
            for row in outcome.rows:
                writer.writerow(
                    {k: ("" if v is None else v) for k, v in row.items()}
                )
        paths.append(path)
    return paths
