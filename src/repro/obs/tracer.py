"""The span tracer: process-local, nestable, serializable.

A :class:`Span` is one timed region — a pass, a cache lookup, a worker
job — with a wall-clock start (``time.time()``, comparable across
processes), a high-resolution duration (``time.perf_counter()``), the
recording pid/tid, and free-form attributes.  A :class:`Tracer` owns a
per-thread span stack (so spans nest) and the flat list of finished
spans; worker processes serialize their spans back to the parent, which
:meth:`Tracer.add_serialized`-merges them into one coherent trace.

Tracing is off by default and the disabled path is a no-op: the
module-level :func:`span` helper returns one shared :data:`NULL_SPAN`
object when no tracer is installed — no allocation, no clock reads —
so instrumentation callsites can stay in hot-ish paths permanently
(gated by ``benchmarks/bench_obs.py`` in CI).

Environment knobs (read by :func:`env_trace` at CLI entry):

- ``REPRO_TRACE`` — ``off`` (default); ``on``/``1`` to trace to a
  default-named file; any other value is used as the output file name.
- ``REPRO_TRACE_DIR`` — directory for trace files (default ``.``).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional

TRACE_ENV = "REPRO_TRACE"
TRACE_DIR_ENV = "REPRO_TRACE_DIR"

#: Span ids are unique within one process (module-level, not per-tracer,
#: so several short-lived worker tracers in the same process never
#: collide once their spans are merged into the parent trace).
_IDS = itertools.count(1)

# All span timestamps come from perf_counter re-based onto the wall
# clock through this anchor pair.  Mixing time.time() starts with
# perf_counter durations would let a child span appear to outlive its
# parent by the jitter between the two clocks; a single clock keeps
# nesting exact.  Forked workers inherit the anchor (CLOCK_MONOTONIC is
# system-wide on Linux), so their spans land on the same timeline;
# spawned workers re-anchor at import, which is as aligned as their
# wall clocks are.
_WALL_ANCHOR = time.time()
_PERF_ANCHOR = time.perf_counter()


def _now() -> float:
    """Wall-clock-aligned timestamp driven by the monotonic clock."""
    return _WALL_ANCHOR + (time.perf_counter() - _PERF_ANCHOR)


@dataclass
class Span:
    """One finished (or in-flight) timed region."""

    name: str
    category: str = "repro"
    start: float = 0.0      #: wall-clock epoch seconds (cross-process)
    duration: float = 0.0   #: perf_counter seconds
    pid: int = 0
    tid: int = 0
    span_id: int = 0
    parent_id: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes (chainable; allowed after the span closed,
        since exporters only read spans at session end)."""
        self.attrs.update(attrs)
        return self

    @property
    def end(self) -> float:
        return self.start + self.duration

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "cat": self.category,
            "start": self.start,
            "duration": self.duration,
            "pid": self.pid,
            "tid": self.tid,
            "id": self.span_id,
        }
        if self.parent_id is not None:
            payload["parent"] = self.parent_id
        if self.attrs:
            payload["attrs"] = self.attrs
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Span":
        return cls(
            name=payload["name"],
            category=payload.get("cat", "repro"),
            start=payload["start"],
            duration=payload["duration"],
            pid=payload.get("pid", 0),
            tid=payload.get("tid", 0),
            span_id=payload.get("id", 0),
            parent_id=payload.get("parent"),
            attrs=dict(payload.get("attrs", {})),
        )


class _NullSpan:
    """The shared do-nothing span returned when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


#: The singleton no-op span — every disabled callsite gets this object.
NULL_SPAN = _NullSpan()


class Tracer:
    """Process-local span collector with a per-thread nesting stack."""

    def __init__(self):
        self.spans: List[Span] = []
        self.pid = os.getpid()
        self._local = threading.local()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @contextmanager
    def span(self, name, category="repro", attrs=None):
        """Open a nested span; closes (and records) on context exit."""
        stack = self._stack()
        sp = Span(
            name=name,
            category=category,
            start=_now(),
            pid=os.getpid(),
            tid=threading.get_ident(),
            span_id=next(_IDS),
            parent_id=stack[-1].span_id if stack else None,
            attrs=dict(attrs or {}),
        )
        stack.append(sp)
        try:
            yield sp
        finally:
            # Same clock as ``start``, so a child's end can never exceed
            # its parent's — nesting stays exact by construction.
            sp.duration = _now() - sp.start
            stack.pop()
            self.spans.append(sp)

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def add_serialized(self, payloads: Iterable[Mapping[str, Any]]) -> int:
        """Merge spans that crossed a process boundary (worker → parent)."""
        added = 0
        for payload in payloads:
            self.spans.append(Span.from_dict(payload))
            added += 1
        return added

    def serialize(self) -> List[Dict[str, Any]]:
        return [span.to_dict() for span in self.spans]

    def __len__(self) -> int:
        return len(self.spans)


#: The installed tracer; ``None`` means tracing is disabled.
_TRACER: Optional[Tracer] = None


def get_tracer() -> Optional[Tracer]:
    return _TRACER


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` (or None to disable); returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def tracing_enabled() -> bool:
    return _TRACER is not None


def span(name: str, category: str = "repro", **attrs: Any):
    """Context manager for one span under the installed tracer.

    The hot-path entry point: when tracing is disabled this returns the
    shared :data:`NULL_SPAN` immediately — no allocation, no syscalls.
    """
    tracer = _TRACER
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, category, attrs)


def add_worker_spans(payloads: Iterable[Mapping[str, Any]]) -> int:
    """Merge serialized worker spans into the installed tracer (no-op
    when tracing is disabled — workers only record when asked to)."""
    tracer = _TRACER
    if tracer is None:
        return 0
    return tracer.add_serialized(payloads)


@contextmanager
def trace(out: Optional[str] = None, span_log: Optional[str] = None):
    """One tracing session: install a fresh tracer, restore on exit.

    ``out`` writes a Chrome/Perfetto ``trace.json`` and ``span_log`` a
    JSONL span log when the session closes (even on error — a failing
    run's partial trace is exactly the one you want to look at).
    Sessions nest safely: the previous tracer is restored afterwards.
    """
    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
        if out or span_log:
            from .export import write_chrome_trace, write_span_log

            if out:
                write_chrome_trace(out, tracer.spans, main_pid=tracer.pid)
            if span_log:
                write_span_log(span_log, tracer.spans)


def trace_env_configured() -> bool:
    """True when ``REPRO_TRACE`` asks for tracing."""
    return os.environ.get(TRACE_ENV, "off").lower() not in ("", "off", "0", "no")


def default_trace_dir() -> str:
    return os.environ.get(TRACE_DIR_ENV) or "."


def env_trace_path() -> str:
    """The output path ``REPRO_TRACE``/``REPRO_TRACE_DIR`` describe."""
    value = os.environ.get(TRACE_ENV, "")
    if value.lower() in ("on", "1", "true", "yes"):
        value = f"repro-trace-{os.getpid()}.json"
    return os.path.join(default_trace_dir(), value)


@contextmanager
def env_trace():
    """CLI-entry session honoring ``REPRO_TRACE``: yields the output
    path when it activated tracing, None otherwise (knob unset, or a
    session — e.g. ``repro trace`` — is already active)."""
    if not trace_env_configured() or tracing_enabled():
        yield None
        return
    path = env_trace_path()
    with trace(out=path):
        yield path
