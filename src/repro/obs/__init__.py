"""Unified tracing and metrics for the whole stack (``repro.obs``).

One question this package answers: *where does the time actually go* —
across workload builds, cache lookups, pipeline passes, and worker
processes, in one coherent timeline.

Spans
-----
Instrumented callsites open nested spans through the module-level
:func:`span` helper::

    from repro import obs

    with obs.trace(out="trace.json") as tracer:
        with obs.span("my:stage", "example", detail="outer"):
            with obs.span("my:substage", "example"):
                ...
    # trace.json now loads in chrome://tracing or ui.perfetto.dev

Outside a :func:`trace` session every ``obs.span(...)`` call returns the
shared no-op span — the disabled path does no allocation and reads no
clocks, so instrumentation is always compiled in (CI gates the overhead
via ``benchmarks/bench_obs.py``).

The batch service forwards tracing into its worker processes and merges
their spans back, so a 2-worker ``repro trace batch`` run produces one
trace containing workload-build, cache-lookup, per-pass, and
worker-execution spans from every pid involved.

Metrics
-------
:data:`~repro.obs.metrics.METRICS` is an always-on process-local
registry of counters/gauges/histograms — cache hits/misses/evictions,
workload-build memoization, worker queue wait, per-pass wall-clocks —
merged across processes the same way spans are.

Exporters
---------
:func:`write_chrome_trace` (Perfetto/Chrome ``trace.json``),
:func:`write_span_log` (JSONL), and :func:`summary_tree` (terminal tree
with self-time percentages).  The ``repro trace`` CLI subcommand wires
all three behind one command; the ``REPRO_TRACE`` / ``REPRO_TRACE_DIR``
environment knobs trace any other CLI invocation without changing its
arguments.
"""

from .export import (
    chrome_trace_events,
    self_time_leaderboard,
    summary_tree,
    to_chrome_trace,
    write_chrome_trace,
    write_span_log,
)
from .metrics import METRICS, Counter, Gauge, Histogram, MetricsRegistry
from .tracer import (
    NULL_SPAN,
    TRACE_DIR_ENV,
    TRACE_ENV,
    Span,
    Tracer,
    add_worker_spans,
    env_trace,
    env_trace_path,
    get_tracer,
    set_tracer,
    span,
    trace,
    trace_env_configured,
    tracing_enabled,
)

__all__ = [
    "Span",
    "Tracer",
    "NULL_SPAN",
    "span",
    "trace",
    "get_tracer",
    "set_tracer",
    "tracing_enabled",
    "add_worker_spans",
    "env_trace",
    "env_trace_path",
    "trace_env_configured",
    "TRACE_ENV",
    "TRACE_DIR_ENV",
    "METRICS",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_span_log",
    "summary_tree",
    "self_time_leaderboard",
]
