"""Trace exporters: Chrome/Perfetto JSON, JSONL span log, summary tree.

The Chrome export emits complete (``"ph": "X"``) events keyed by
wall-clock microseconds, one per span, plus process/thread metadata
events — the file loads directly in ``chrome://tracing`` and
https://ui.perfetto.dev.  Nesting is implied by containment on each
(pid, tid) track, which is exactly how the spans were recorded.

The summary tree is the terminal view: spans aggregated by name within
their parent chain, with total time, call counts, and self-time
percentages — worker processes render as their own roots under a
``process NNNN`` heading.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .metrics import METRICS, MetricsRegistry
from .tracer import Span


def _thread_label(tids: Sequence[int], tid: int) -> str:
    """Small stable per-process thread names (main thread first seen)."""
    index = sorted(set(tids)).index(tid)
    return "main" if index == 0 else f"thread-{index}"


def chrome_trace_events(
    spans: Sequence[Span], main_pid: Optional[int] = None
) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list: metadata then one X event per span."""
    events: List[Dict[str, Any]] = []
    by_pid: Dict[int, List[int]] = {}
    for span in spans:
        by_pid.setdefault(span.pid, []).append(span.tid)
    for pid in sorted(by_pid):
        name = "repro (main)" if pid == main_pid else f"repro worker {pid}"
        events.append(
            {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
             "args": {"name": name}}
        )
        for tid in sorted(set(by_pid[pid])):
            events.append(
                {"ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                 "args": {"name": _thread_label(by_pid[pid], tid)}}
            )
    for span in sorted(spans, key=lambda s: (s.pid, s.tid, s.start, -s.duration)):
        args: Dict[str, Any] = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(span.attrs)
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.category,
                "ts": round(span.start * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": span.pid,
                "tid": span.tid,
                "args": args,
            }
        )
    return events


def to_chrome_trace(
    spans: Sequence[Span],
    main_pid: Optional[int] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Dict[str, Any]:
    """The full Perfetto-loadable document (metrics ride in otherData)."""
    registry = METRICS if metrics is None else metrics
    return {
        "traceEvents": chrome_trace_events(spans, main_pid=main_pid),
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "metrics": registry.snapshot(),
        },
    }


def _atomic_write(path: str, text: str) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-", suffix=".json")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except OSError:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise


def write_chrome_trace(
    path: str,
    spans: Sequence[Span],
    main_pid: Optional[int] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> str:
    """Write the Chrome/Perfetto trace document; returns ``path``."""
    document = to_chrome_trace(spans, main_pid=main_pid, metrics=metrics)
    _atomic_write(path, json.dumps(document, sort_keys=True))
    return path


def write_span_log(path: str, spans: Sequence[Span]) -> str:
    """One canonical JSON object per span, ordered by start time."""
    lines = [
        json.dumps(span.to_dict(), sort_keys=True, separators=(",", ":"))
        for span in sorted(spans, key=lambda s: (s.start, s.pid, s.tid))
    ]
    _atomic_write(path, "\n".join(lines) + ("\n" if lines else ""))
    return path


# ---------------------------------------------------------------------------
# terminal summary tree
# ---------------------------------------------------------------------------

class _Node:
    """Aggregate of same-named sibling spans at one tree position."""

    __slots__ = ("name", "count", "total", "children")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.children: Dict[str, "_Node"] = {}

    @property
    def child_total(self) -> float:
        return sum(child.total for child in self.children.values())

    @property
    def self_seconds(self) -> float:
        return max(0.0, self.total - self.child_total)


def _build_forest(spans: Sequence[Span]) -> Dict[int, List[_Node]]:
    """Per-pid aggregate trees; orphan parents fall back to roots."""
    by_key = {(span.pid, span.span_id): span for span in spans}
    # Children grouped under their parent span instance first...
    kids: Dict[Tuple[int, int], List[Span]] = {}
    roots: Dict[int, List[Span]] = {}
    for span in sorted(spans, key=lambda s: s.start):
        parent = (span.pid, span.parent_id)
        if span.parent_id is not None and parent in by_key:
            kids.setdefault(parent, []).append(span)
        else:
            roots.setdefault(span.pid, []).append(span)

    # ...then collapsed into name-keyed aggregate nodes, recursively.
    def aggregate(group: List[Span], into: Dict[str, _Node]) -> None:
        for span in group:
            node = into.get(span.name)
            if node is None:
                node = into[span.name] = _Node(span.name)
            node.count += 1
            node.total += span.duration
            aggregate(kids.get((span.pid, span.span_id), []), node.children)

    forest: Dict[int, List[_Node]] = {}
    for pid, group in roots.items():
        nodes: Dict[str, _Node] = {}
        aggregate(group, nodes)
        forest[pid] = sorted(nodes.values(), key=lambda n: -n.total)
    return forest


def summary_tree(
    spans: Sequence[Span],
    main_pid: Optional[int] = None,
    metrics: Optional[MetricsRegistry] = None,
    max_depth: int = 6,
) -> str:
    """Render the aggregated span tree with self-time percentages."""
    if not spans:
        return "trace summary: no spans recorded"
    forest = _build_forest(spans)
    pids = sorted(forest, key=lambda pid: (pid != main_pid, pid))
    lines: List[str] = []
    span_count = len(spans)
    wall = max(s.end for s in spans) - min(s.start for s in spans)
    lines.append(
        f"trace summary: {span_count} spans across {len(forest)} "
        f"process(es), {wall:.3f}s wall"
    )

    def render(node: _Node, depth: int, root_total: float) -> None:
        if depth > max_depth:
            return
        pct = 100.0 * node.self_seconds / root_total if root_total else 0.0
        lines.append(
            f"  {'  ' * depth}{node.name:<{max(1, 34 - 2 * depth)}} "
            f"{node.count:>4}x {node.total:>9.4f}s  self {pct:5.1f}%"
        )
        for child in sorted(node.children.values(), key=lambda n: -n.total):
            render(child, depth + 1, root_total)

    for pid in pids:
        label = "main" if pid == main_pid else "worker"
        lines.append(f"process {pid} ({label})")
        for root in forest[pid]:
            render(root, 0, root.total)
    registry = METRICS if metrics is None else metrics
    metric_lines = registry.summary_lines()
    if metric_lines:
        lines.append("metrics:")
        lines.extend(f"  {line}" for line in metric_lines)
    return "\n".join(lines)


def self_time_leaderboard(spans: Sequence[Span], top: int = 10) -> str:
    """Flat top-N leaderboard of span names ranked by total self-time.

    Self-time is a span's duration minus the time spent in its child
    spans, aggregated by name across every process and tree position —
    the direct answer to "where do the cycles actually go?" that the
    nested :func:`summary_tree` spreads over its hierarchy.
    """
    if not spans:
        return "trace leaderboard: no spans recorded"
    totals: Dict[str, List[float]] = {}

    def walk(node: _Node) -> None:
        acc = totals.setdefault(node.name, [0.0, 0.0, 0.0])
        acc[0] += node.self_seconds
        acc[1] += node.total
        acc[2] += node.count
        for child in node.children.values():
            walk(child)

    for nodes in _build_forest(spans).values():
        for root in nodes:
            walk(root)
    grand_self = sum(acc[0] for acc in totals.values())
    ranked = sorted(totals.items(), key=lambda item: -item[1][0])[:max(1, top)]
    width = max(len(name) for name, _ in ranked)
    lines = [
        f"self-time leaderboard (top {len(ranked)} of {len(totals)} "
        f"span names, {grand_self:.3f}s total self-time)"
    ]
    for rank, (name, (self_s, total_s, count)) in enumerate(ranked, start=1):
        pct = 100.0 * self_s / grand_self if grand_self else 0.0
        lines.append(
            f"  {rank:>2}. {name:<{width}}  self {self_s:>9.4f}s "
            f"({pct:5.1f}%)  total {total_s:>9.4f}s  {int(count):>5}x"
        )
    return "\n".join(lines)
