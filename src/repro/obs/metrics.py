"""Process-local metrics registry: counters, gauges, histograms.

Unlike spans, metrics are *always on* — they are plain attribute
increments with no clock reads, cheap enough to leave enabled in every
run.  The well-known instruments (see the module constants below) count
cache hits/misses/evictions, workload-build memoization, worker
queue-wait, and per-pass wall-clocks.

Worker processes :meth:`MetricsRegistry.drain` their registry after
each payload and ship the snapshot back with the result; the parent
:meth:`MetricsRegistry.merge`-accumulates them, so a batch run ends
with one registry describing all processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping


@dataclass
class Counter:
    """A monotonically increasing integer."""

    value: int = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value (last write wins)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Histogram:
    """Streaming summary of observed values: count/sum/min/max."""

    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Name-addressed instruments, created on first use."""

    def __init__(self):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram()
        return instrument

    def snapshot(self) -> Dict[str, Any]:
        """Plain-JSON view of every instrument (for pickling/merging)."""
        return {
            "counters": {k: c.value for k, c in sorted(self.counters.items())},
            "gauges": {k: g.value for k, g in sorted(self.gauges.items())},
            "histograms": {
                k: h.as_dict() for k, h in sorted(self.histograms.items())
            },
        }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Accumulate another registry's snapshot (worker → parent):
        counters add, gauges take the incoming value, histograms pool."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, payload in snapshot.get("histograms", {}).items():
            if not payload.get("count"):
                continue
            histogram = self.histogram(name)
            histogram.count += payload["count"]
            histogram.total += payload["total"]
            histogram.min = min(histogram.min, payload["min"])
            histogram.max = max(histogram.max, payload["max"])

    def drain(self) -> Dict[str, Any]:
        """Snapshot then reset — per-payload deltas for worker shipping."""
        snapshot = self.snapshot()
        self.reset()
        return snapshot

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    def summary_lines(self) -> List[str]:
        """Human-readable one-per-instrument lines (sorted by name)."""
        lines = []
        for name, counter in sorted(self.counters.items()):
            lines.append(f"{name} = {counter.value}")
        for name, gauge in sorted(self.gauges.items()):
            lines.append(f"{name} = {gauge.value:g}")
        for name, histogram in sorted(self.histograms.items()):
            if not histogram.count:
                continue
            lines.append(
                f"{name}: n={histogram.count} total={histogram.total:.4f}s"
                f" mean={histogram.mean:.4f}s min={histogram.min:.4f}s"
                f" max={histogram.max:.4f}s"
            )
        return lines


#: The process-global registry every instrumented callsite uses.
METRICS = MetricsRegistry()

# Well-known instrument names (one place, so dashboards/tests don't
# scatter string literals).
CACHE_HITS = "cache.hits"
CACHE_MISSES = "cache.misses"
CACHE_PUTS = "cache.puts"
CACHE_EVICTIONS = "cache.evictions"
WORKLOAD_BUILDS = "workload.builds"
WORKLOAD_MEMO_HITS = "workload.memo_hits"
WORKLOAD_MEMO_MISSES = "workload.memo_misses"
JOBS_EXECUTED = "jobs.executed"
JOBS_FAILED = "jobs.failed"
ESTIMATED_FIDELITY = "jobs.estimated_fidelity"
QUEUE_WAIT = "pool.queue_wait_seconds"
PASS_SECONDS = "pipeline.pass_seconds"
SERVE_REQUESTS = "serve.requests"
SERVE_REJECTED = "serve.rejected"
SERVE_DEDUP_HITS = "serve.dedup_hits"
SERVE_HOT_HITS = "serve.hot_hits"
SERVE_HOT_MISSES = "serve.hot_misses"
SERVE_HOT_EVICTIONS = "serve.hot_evictions"
SERVE_QUEUE_WAIT = "serve.queue_wait_seconds"
SERVE_TEMPLATE_BINDS = "serve.template_binds"
TEMPLATE_CACHE_HITS = "template.cache_hits"
TEMPLATE_CACHE_MISSES = "template.cache_misses"
TEMPLATE_COMPILES = "template.compiles"
