"""QAOA workloads: benchmark graphs and MaxCut ansatz blocks."""

from .ansatz import maxcut_blocks, mixer_angles, qaoa_gate_counts
from .graphs import (
    QAOA_BENCHMARKS,
    RANDOM_EDGE_COUNTS,
    benchmark_graph,
    edge_list,
    random_graph,
    regular_graph,
)

__all__ = [
    "maxcut_blocks",
    "mixer_angles",
    "qaoa_gate_counts",
    "benchmark_graph",
    "random_graph",
    "regular_graph",
    "edge_list",
    "QAOA_BENCHMARKS",
    "RANDOM_EDGE_COUNTS",
]
