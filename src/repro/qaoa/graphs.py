"""QAOA benchmark graphs (paper Sec. VI-F).

Random graphs with a target edge count (the paper's density-0.1 instances)
and 3-regular graphs, both via networkx with fixed seeds so every run of an
experiment sees the same five instances.
"""

from __future__ import annotations

from typing import List, Tuple

import networkx as nx

#: Edge counts of the paper's random instances (Table I).
RANDOM_EDGE_COUNTS = {16: 25, 18: 31, 20: 40}


def random_graph(num_nodes: int, num_edges: int, seed: int = 0) -> nx.Graph:
    """A connected G(n, m) random graph."""
    for attempt in range(100):
        graph = nx.gnm_random_graph(num_nodes, num_edges, seed=seed + attempt * 1000)
        if nx.is_connected(graph):
            return graph
    # Fall back: connect components with extra edges, then trim.
    graph = nx.gnm_random_graph(num_nodes, num_edges, seed=seed)
    components = [sorted(c) for c in nx.connected_components(graph)]
    for left, right in zip(components, components[1:]):
        graph.add_edge(left[0], right[0])
    while graph.number_of_edges() > num_edges:
        for edge in list(graph.edges()):
            trial = graph.copy()
            trial.remove_edge(*edge)
            if nx.is_connected(trial):
                graph = trial
                break
        else:
            break
    return graph


def regular_graph(num_nodes: int, degree: int = 3, seed: int = 0) -> nx.Graph:
    """A connected d-regular graph."""
    for attempt in range(100):
        graph = nx.random_regular_graph(degree, num_nodes, seed=seed + attempt * 1000)
        if nx.is_connected(graph):
            return graph
    raise RuntimeError("could not build a connected regular graph")


def benchmark_graph(name: str, seed: int = 0) -> nx.Graph:
    """Resolve a paper benchmark name: "Rand-16", "REG3-20", ..."""
    kind, size_text = name.split("-")
    size = int(size_text)
    if kind.lower() in ("rand", "ran"):
        edges = RANDOM_EDGE_COUNTS.get(size, max(size, int(0.1 * size * (size - 1) / 2)))
        return random_graph(size, edges, seed=seed)
    if kind.lower() in ("reg3", "reg"):
        return regular_graph(size, 3, seed=seed)
    raise ValueError(f"unknown QAOA benchmark {name!r}")


def edge_list(graph: nx.Graph) -> List[Tuple[int, int]]:
    """Sorted, normalized edges."""
    return sorted((min(a, b), max(a, b)) for a, b in graph.edges())


QAOA_BENCHMARKS: Tuple[str, ...] = (
    "Rand-16",
    "Rand-18",
    "Rand-20",
    "REG3-16",
    "REG3-18",
    "REG3-20",
)
