"""QAOA MaxCut ansatz construction.

The p=1 QAOA circuit is ``H^n . exp(-i gamma/2 sum Z_u Z_v) . RX(beta)^n``.
Each edge contributes one two-operator Pauli string — its own block, since
QAOA strings share no operators (the low-similarity regime that motivates
fast bridging, Sec. IV-C).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import networkx as nx

from ..pauli.block import PauliBlock
from ..pauli.pauli_string import PauliString
from .graphs import edge_list


def maxcut_blocks(
    graph: nx.Graph,
    gamma: float = 0.7,
) -> List[PauliBlock]:
    """One single-string ZZ block per edge."""
    num_qubits = graph.number_of_nodes()
    blocks = []
    for u, v in edge_list(graph):
        string = PauliString.from_ops(num_qubits, {u: "Z", v: "Z"})
        blocks.append(PauliBlock([string], [1.0], angle=gamma, label=f"zz:{u},{v}"))
    return blocks


def qaoa_gate_counts(graph: nx.Graph) -> Tuple[int, int]:
    """Table I accounting: (CNOTs, 1Q gates) of the logical p=1 circuit.

    2 CNOTs per edge; 1 RZ per edge plus an H and an RX per qubit.
    """
    edges = graph.number_of_edges()
    nodes = graph.number_of_nodes()
    return 2 * edges, edges + 2 * nodes


def mixer_angles(num_qubits: int, beta: float = 0.3) -> Sequence[float]:
    """Per-qubit mixer angles (uniform for standard QAOA)."""
    return [beta] * num_qubits
