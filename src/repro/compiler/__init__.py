"""Compilers: Tetris plus every baseline from the paper's evaluation."""

from .base import (
    CompilationResult,
    Compiler,
    interaction_pairs,
    logical_cnot_count,
    logical_one_qubit_count,
)
from .generic import TketLikeCompiler
from .max_cancel import MaxCancelCompiler, max_cancel_logical_circuit
from .paulihedral import PaulihedralCompiler, similarity_chain_order
from .pcoast import PCoastLikeCompiler
from .qaoa_2qan import TetrisQAOACompiler, TwoQANLikeCompiler, extract_edges
from .tetris import (
    RecursiveTetrisIR,
    TetrisBlockIR,
    TetrisCompiler,
    lower_blocks,
    lower_blocks_recursive,
)

__all__ = [
    "Compiler",
    "CompilationResult",
    "logical_cnot_count",
    "logical_one_qubit_count",
    "interaction_pairs",
    "TetrisCompiler",
    "TetrisBlockIR",
    "lower_blocks",
    "RecursiveTetrisIR",
    "lower_blocks_recursive",
    "PaulihedralCompiler",
    "similarity_chain_order",
    "MaxCancelCompiler",
    "max_cancel_logical_circuit",
    "TketLikeCompiler",
    "PCoastLikeCompiler",
    "TwoQANLikeCompiler",
    "TetrisQAOACompiler",
    "extract_edges",
]
