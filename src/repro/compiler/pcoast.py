"""A PCOAST-style baseline (Paykin et al., Intel Quantum SDK).

PCOAST performs aggressive *logical-level* Pauli optimization — the best
logical gate counts of all baselines — but is oblivious to qubit mapping,
so the subsequent routing pass pays a large SWAP bill (paper Fig. 15b).

We model it as: greedy global ordering of blocks by leaf similarity,
single-leaf-tree synthesis (maximal logical cancellation, like max_cancel),
a logical cancellation pass, then generic routing.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..hardware.coupling import CouplingGraph
from ..pauli.block import PauliBlock
from ..passes.peephole import cancel_gates
from ..routing.layout import greedy_interaction_layout
from ..routing.router import route_circuit
from .base import (
    CompilationResult,
    Compiler,
    blocks_num_qubits,
    interaction_pairs,
    logical_cnot_count,
)
from .max_cancel import max_cancel_logical_circuit
from .paulihedral import similarity_chain_order


class PCoastLikeCompiler(Compiler):
    """Logical-first optimizer: minimum logical CNOTs, maximum SWAP cost."""

    name = "pcoast-like"

    def compile(
        self,
        blocks: Sequence[PauliBlock],
        coupling: CouplingGraph,
        num_logical: Optional[int] = None,
    ) -> CompilationResult:
        num_logical = num_logical or blocks_num_qubits(blocks)
        block_order = similarity_chain_order(blocks)
        ordered = [blocks[index] for index in block_order]
        logical = max_cancel_logical_circuit(ordered)
        logical = cancel_gates(logical)
        layout = greedy_interaction_layout(
            num_logical, coupling, interaction_pairs(blocks)
        )
        routed = route_circuit(logical, coupling, layout)
        result = CompilationResult(
            circuit=routed.circuit,
            initial_layout=routed.initial_layout,
            final_layout=routed.final_layout,
            num_swaps=routed.num_swaps,
            logical_cnots=logical_cnot_count(blocks),
            compiler_name=self.name,
        )
        result.extra["block_order"] = block_order
        return result
