"""A PCOAST-style baseline (Paykin et al., Intel Quantum SDK).

PCOAST performs aggressive *logical-level* Pauli optimization — the best
logical gate counts of all baselines — but is oblivious to qubit mapping,
so the subsequent routing pass pays a large SWAP bill (paper Fig. 15b).

We model it as: greedy global ordering of blocks by leaf similarity,
single-leaf-tree synthesis (maximal logical cancellation, like max_cancel),
a logical cancellation pass, then generic routing — the ``pcoast-like``
pipeline (``order-similarity``, ``synth-single-leaf``, ``cancel-logical``,
``layout``, ``route``).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..hardware.coupling import CouplingGraph
from ..pauli.block import PauliBlock
from .base import CompilationResult, Compiler


class PCoastLikeCompiler(Compiler):
    """Logical-first optimizer: minimum logical CNOTs, maximum SWAP cost."""

    name = "pcoast-like"

    def compile(
        self,
        blocks: Sequence[PauliBlock],
        coupling: CouplingGraph,
        num_logical: Optional[int] = None,
    ) -> CompilationResult:
        return self.run_pipeline("pcoast-like", {}, blocks, coupling, num_logical)
