"""A T|Ket>-style generic baseline.

Synthesizes every Pauli exponential independently as a CNOT ladder over its
support (no inter-string awareness), then routes with the generic SWAP
router.  The paper reports this class of compiler at roughly 2x the CNOT
count of Paulihedral/Tetris (Fig. 14/15a); the gap comes precisely from the
absent block-level structure exploitation.

Two cleanup styles mirror Fig. 15a:

- ``style="tket-o2"`` — cancellation is run on the *logical* circuit before
  routing and again after (T|Ket>'s own optimization knows the synthesis
  structure, so cleaning pre-routing pays off);
- ``style="qiskit-o3"`` — the circuit is routed first and only then
  optimized (post-hoc cleanup of an already-routed circuit).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..circuit.circuit import QuantumCircuit
from ..hardware.coupling import CouplingGraph
from ..pauli.block import PauliBlock
from ..passes.peephole import cancel_gates
from ..routing.layout import greedy_interaction_layout
from ..routing.router import route_circuit
from ..synthesis.chain import synthesize_chain
from .base import (
    CompilationResult,
    Compiler,
    blocks_num_qubits,
    interaction_pairs,
    logical_cnot_count,
)

_STYLES = ("tket-o2", "qiskit-o3")


class TketLikeCompiler(Compiler):
    """Per-string ladder synthesis + generic routing."""

    name = "tket-like"

    def __init__(self, style: str = "tket-o2") -> None:
        if style not in _STYLES:
            raise ValueError(f"style must be one of {_STYLES}")
        self.style = style
        self.name = f"tket-like[{style}]"

    def compile(
        self,
        blocks: Sequence[PauliBlock],
        coupling: CouplingGraph,
        num_logical: Optional[int] = None,
    ) -> CompilationResult:
        num_logical = num_logical or blocks_num_qubits(blocks)
        logical = QuantumCircuit(num_logical, name="tket-like")
        for block in blocks:
            for string, weight in zip(block.strings, block.weights):
                if not string.is_identity():
                    synthesize_chain(string, block.angle * weight, logical)

        if self.style == "tket-o2":
            logical = cancel_gates(logical)

        layout = greedy_interaction_layout(
            num_logical, coupling, interaction_pairs(blocks)
        )
        routed = route_circuit(logical, coupling, layout)
        return CompilationResult(
            circuit=routed.circuit,
            initial_layout=routed.initial_layout,
            final_layout=routed.final_layout,
            num_swaps=routed.num_swaps,
            logical_cnots=logical_cnot_count(blocks),
            compiler_name=self.name,
        )
