"""A T|Ket>-style generic baseline.

Synthesizes every Pauli exponential independently as a CNOT ladder over its
support (no inter-string awareness), then routes with the generic SWAP
router.  The paper reports this class of compiler at roughly 2x the CNOT
count of Paulihedral/Tetris (Fig. 14/15a); the gap comes precisely from the
absent block-level structure exploitation.

Two cleanup styles mirror Fig. 15a:

- ``style="tket-o2"`` — cancellation is run on the *logical* circuit before
  routing and again after (T|Ket>'s own optimization knows the synthesis
  structure, so cleaning pre-routing pays off);
- ``style="qiskit-o3"`` — the circuit is routed first and only then
  optimized (post-hoc cleanup of an already-routed circuit).

As a pipeline this is ``tket-like``: ``synth-chain``,
``cancel-logical`` (tket-o2 style only), ``layout``, ``route``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..hardware.coupling import CouplingGraph
from ..pauli.block import PauliBlock
from .base import CompilationResult, Compiler

_STYLES = ("tket-o2", "qiskit-o3")


class TketLikeCompiler(Compiler):
    """Per-string ladder synthesis + generic routing."""

    name = "tket-like"

    def __init__(self, style: str = "tket-o2") -> None:
        if style not in _STYLES:
            raise ValueError(f"style must be one of {_STYLES}")
        self.style = style
        self.name = f"tket-like[{style}]"

    def compile(
        self,
        blocks: Sequence[PauliBlock],
        coupling: CouplingGraph,
        num_logical: Optional[int] = None,
    ) -> CompilationResult:
        return self.run_pipeline(
            "tket-like", {"style": self.style}, blocks, coupling, num_logical
        )
