"""The Tetris compiler driver (paper Fig. 11).

Pipeline: lower blocks to Tetris-IR -> choose an initial layout -> schedule
blocks (lookahead or similarity-only) -> synthesize each block with
Algorithm 1 (root clustering, scored leaf attachment, bridging) -> the
caller applies the O3-style cleanup pass.

Since the pipeline refactor the stages live as passes
(:class:`repro.pipeline.passes.LowerTetrisIRPass`,
:class:`~repro.pipeline.passes.InteractionLayoutPass`,
:class:`~repro.pipeline.passes.TetrisSynthesisPass`) registered as the
``tetris`` pipeline; this class is the parameter-holding wrapper.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...hardware.coupling import CouplingGraph
from ...pauli.block import PauliBlock
from ..base import CompilationResult, Compiler
from .scheduler import DEFAULT_LOOKAHEAD
from .synthesis import DEFAULT_SWAP_WEIGHT


class TetrisCompiler(Compiler):
    """Tetris with the lookahead scheduler (the paper's full configuration).

    Parameters
    ----------
    swap_weight:
        The ``w`` of the leaf-attachment score (default 3, one SWAP = 3
        CNOTs; Sec. V-A and Fig. 20).
    lookahead:
        The scheduler's K (default 10; Fig. 19).  ``lookahead=0`` selects
        the similarity-only scheduler — the paper's plain "Tetris" bar in
        Fig. 14.
    enable_bridging:
        Toggle the fast-bridging path for leaf edges.
    """

    name = "tetris"

    def __init__(
        self,
        swap_weight: float = DEFAULT_SWAP_WEIGHT,
        lookahead: int = DEFAULT_LOOKAHEAD,
        enable_bridging: bool = True,
        sort_strings: bool = True,
    ) -> None:
        self.swap_weight = swap_weight
        self.lookahead = lookahead
        self.enable_bridging = enable_bridging
        self.sort_strings = sort_strings
        if lookahead > 0:
            self.name = f"tetris+lookahead" if lookahead != 1 else "tetris"

    def compile(
        self,
        blocks: Sequence[PauliBlock],
        coupling: CouplingGraph,
        num_logical: Optional[int] = None,
    ) -> CompilationResult:
        return self.run_pipeline(
            "tetris",
            {
                "swap_weight": self.swap_weight,
                "lookahead": self.lookahead,
                "enable_bridging": self.enable_bridging,
                "sort_strings": self.sort_strings,
            },
            blocks,
            coupling,
            num_logical,
        )
