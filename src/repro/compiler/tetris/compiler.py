"""The Tetris compiler driver (paper Fig. 11).

Pipeline: lower blocks to Tetris-IR -> choose an initial layout -> schedule
blocks (lookahead or similarity-only) -> synthesize each block with
Algorithm 1 (root clustering, scored leaf attachment, bridging) -> the
caller applies the O3-style cleanup pass.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...circuit.circuit import QuantumCircuit
from ...hardware.coupling import CouplingGraph
from ...pauli.block import PauliBlock
from ...routing.layout import Layout, greedy_interaction_layout
from ..base import (
    CompilationResult,
    Compiler,
    blocks_num_qubits,
    interaction_pairs,
    logical_cnot_count,
)
from ..mapping_utils import SwapTracker
from .ir import lower_blocks
from .scheduler import (
    DEFAULT_LOOKAHEAD,
    LookaheadScheduler,
    SimilarityScheduler,
)
from .synthesis import DEFAULT_SWAP_WEIGHT, synthesize_tetris_block, try_block


class TetrisCompiler(Compiler):
    """Tetris with the lookahead scheduler (the paper's full configuration).

    Parameters
    ----------
    swap_weight:
        The ``w`` of the leaf-attachment score (default 3, one SWAP = 3
        CNOTs; Sec. V-A and Fig. 20).
    lookahead:
        The scheduler's K (default 10; Fig. 19).  ``lookahead=0`` selects
        the similarity-only scheduler — the paper's plain "Tetris" bar in
        Fig. 14.
    enable_bridging:
        Toggle the fast-bridging path for leaf edges.
    """

    name = "tetris"

    def __init__(
        self,
        swap_weight: float = DEFAULT_SWAP_WEIGHT,
        lookahead: int = DEFAULT_LOOKAHEAD,
        enable_bridging: bool = True,
        sort_strings: bool = True,
    ) -> None:
        self.swap_weight = swap_weight
        self.lookahead = lookahead
        self.enable_bridging = enable_bridging
        self.sort_strings = sort_strings
        if lookahead > 0:
            self.name = f"tetris+lookahead" if lookahead != 1 else "tetris"

    def compile(
        self,
        blocks: Sequence[PauliBlock],
        coupling: CouplingGraph,
        num_logical: Optional[int] = None,
    ) -> CompilationResult:
        num_logical = num_logical or blocks_num_qubits(blocks)
        ir_blocks = lower_blocks(blocks, sort_strings=self.sort_strings)
        layout = greedy_interaction_layout(
            num_logical, coupling, interaction_pairs(blocks)
        )
        initial = layout.copy()
        circuit = QuantumCircuit(coupling.num_qubits, name="tetris")
        tracker = SwapTracker(circuit, layout)

        if self.lookahead > 0:
            def trial_cost(candidate, live_layout):
                return try_block(
                    candidate,
                    live_layout,
                    coupling,
                    swap_weight=self.swap_weight,
                    enable_bridging=self.enable_bridging,
                )

            scheduler = LookaheadScheduler(
                ir_blocks, lookahead=self.lookahead, cost_of=trial_cost
            )
        else:
            scheduler = SimilarityScheduler(ir_blocks)

        index_of = {id(ir): position for position, ir in enumerate(ir_blocks)}
        block_order = []
        bridge_overhead = 0
        while scheduler:
            ir = scheduler.pick_next(layout, coupling)
            block_order.append(index_of[id(ir)])
            stats = synthesize_tetris_block(
                ir,
                tracker,
                coupling,
                swap_weight=self.swap_weight,
                enable_bridging=self.enable_bridging,
            )
            bridge_overhead += stats.bridge_overhead_cnots

        result = CompilationResult(
            circuit=circuit,
            initial_layout=initial,
            final_layout=layout,
            num_swaps=tracker.num_swaps,
            bridge_overhead_cnots=bridge_overhead,
            logical_cnots=logical_cnot_count(blocks),
            compiler_name=self.name,
        )
        result.extra["block_order"] = block_order
        result.extra["string_orders"] = [
            list(_original_string_order(blocks[i], ir_blocks[i])) for i in block_order
        ]
        return result


def _original_string_order(block, ir) -> list:
    """Map the IR's (possibly re-sorted) strings back to block indices."""
    pool = {}
    for position, string in enumerate(block.strings):
        pool.setdefault(string, []).append(position)
    order = []
    for string in ir.strings:
        order.append(pool[string].pop(0))
    return order
