"""The Tetris compiler: IR, Algorithm-1 synthesis, lookahead scheduling."""

from .compiler import TetrisCompiler
from .ir import TetrisBlockIR, lower_blocks
from .recursive_ir import (
    RecursiveRun,
    RecursiveTetrisIR,
    lower_blocks_recursive,
)
from .scheduler import (
    DEFAULT_LOOKAHEAD,
    LookaheadScheduler,
    SimilarityScheduler,
    estimate_root_gather_cost,
    lookahead_order,
)
from .synthesis import (
    DEFAULT_SWAP_WEIGHT,
    BlockSynthesisStats,
    synthesize_tetris_block,
)

__all__ = [
    "TetrisCompiler",
    "TetrisBlockIR",
    "lower_blocks",
    "RecursiveTetrisIR",
    "RecursiveRun",
    "lower_blocks_recursive",
    "LookaheadScheduler",
    "SimilarityScheduler",
    "lookahead_order",
    "estimate_root_gather_cost",
    "synthesize_tetris_block",
    "BlockSynthesisStats",
    "DEFAULT_LOOKAHEAD",
    "DEFAULT_SWAP_WEIGHT",
]
