"""Tetris-IR-recursive (paper Fig. 6(c) — left as future work there).

The plain Tetris-IR extracts one common section shared by *all* strings of
a block.  The recursive refinement also finds operators shared by *runs of
consecutive strings* inside the block: in Fig. 6(c) the last two strings
share a Pauli-X on the second qubit, so its gates cancel between them even
though the first strings break the block-wide commonality.

This module implements the refinement as an IR analysis:

- :class:`RecursiveRun` — a maximal run of consecutive strings sharing one
  operator on one qubit (beyond the block-wide common section);
- :class:`RecursiveTetrisIR` — the annotated block, with Fig. 6(c)-style
  rendering (run members lower-cased) and a cancellation estimate.

Lowering keeps the plain Tetris emission: the peephole pass already
harvests run-level cancellations (matching basis gates cancel first, then
the adjacent tree edges), so the recursive IR quantifies and exposes the
opportunity rather than changing code generation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ...pauli.block import PauliBlock
from ...pauli.operators import CHAR_OF_CODE, I
from .ir import TetrisBlockIR


@dataclass(frozen=True)
class RecursiveRun:
    """``strings[start:stop]`` all carry ``op`` on ``qubit``."""

    qubit: int
    op: str
    start: int
    stop: int  # exclusive

    @property
    def length(self) -> int:
        return self.stop - self.start

    def covers(self, index: int) -> bool:
        return self.start <= index < self.stop


class RecursiveTetrisIR(TetrisBlockIR):
    """Tetris-IR plus per-run common-operator annotations."""

    __slots__ = ("runs",)

    def __init__(self, block: PauliBlock, sort_strings: bool = True) -> None:
        super().__init__(block, sort_strings=sort_strings)
        self.runs: Tuple[RecursiveRun, ...] = tuple(self._find_runs())

    def _find_runs(self) -> List[RecursiveRun]:
        """Maximal runs (length >= 2) of equal non-identity root-qubit ops.

        Scans the dense per-qubit code plane decoded once from the block's
        packed bitplanes instead of indexing characters string by string.
        """
        runs: List[RecursiveRun] = []
        codes = self.block.table.code_rows()
        num_strings = codes.shape[0]
        for qubit in self.root_qubits:
            column = codes[:, qubit]
            start = 0
            while start < num_strings:
                code = column[start]
                stop = start + 1
                while stop < num_strings and column[stop] == code:
                    stop += 1
                if code != 0 and stop - start >= 2:
                    runs.append(
                        RecursiveRun(qubit, CHAR_OF_CODE[code], start, stop)
                    )
                start = stop
        runs.sort(key=lambda run: (run.start, run.qubit))
        return runs

    # -- analysis ---------------------------------------------------------------

    def extra_cancelable_cnots(self) -> int:
        """CNOTs cancellable beyond the block-wide leaf section.

        Each run of length L lets the qubit's tree edge cancel between the
        L-1 interior string boundaries, i.e. 2 * (L - 1) CNOTs.
        """
        return sum(2 * (run.length - 1) for run in self.runs)

    def run_coverage(self) -> Dict[int, int]:
        """``{qubit: number of strings covered by some run on that qubit}``."""
        coverage: Dict[int, int] = {}
        for run in self.runs:
            coverage[run.qubit] = coverage.get(run.qubit, 0) + run.length
        return coverage

    # -- rendering ---------------------------------------------------------------

    def render(self) -> str:
        """Fig. 6(c)-style text: run-covered operators lower-cased too."""
        order = self.qubit_order()
        leaf_set = set(self.leaf_qubits)
        run_covered = {
            (run.qubit, index)
            for run in self.runs
            for index in range(run.start, run.stop)
        }
        lines: List[str] = ["".join(str(q % 10) for q in order)]
        last = self.num_strings - 1
        for index, string in enumerate(self.strings):
            chars = []
            for qubit in order:
                op = string[qubit]
                if qubit in leaf_set:
                    if index in (0, last):
                        chars.append(op.lower())
                elif (qubit, index) in run_covered:
                    chars.append(op.lower())
                else:
                    chars.append(op)
            lines.append("".join(chars))
        weights = ", ".join(f"{w:g}" for w in self.weights)
        lines.append(f"weights: {{{weights}}}, angle: {self.angle:g}")
        return "\n".join(lines)


def lower_blocks_recursive(
    blocks,
    sort_strings: bool = True,
) -> List[RecursiveTetrisIR]:
    """Lower plain Pauli blocks into the recursive Tetris-IR."""
    return [RecursiveTetrisIR(block, sort_strings=sort_strings) for block in blocks]
