"""Lookahead block scheduling (paper Sec. V-B).

1. Start with the block of largest *active length* (most non-identity
   operators) — the block with the most cancellation potential.
2. Repeatedly: rank remaining blocks by leaf-tree similarity (Eq. 1) to the
   last scheduled block, take the top-K candidates, and among them schedule
   the one whose root tree is cheapest to gather under the current mapping.

The SWAP-cost estimate is the clustering cost of the candidate's root-tree
qubits: the summed distance of each root qubit to the set's centre, minus
the one free hop each (already-adjacent qubits cost nothing).

All Eq. (1) similarities are precomputed as one batch matrix kernel over
the blocks' packed leaf tables (:func:`repro.pauli.similarity.
block_similarity_matrix`) — ranking a candidate set is then pure index
arithmetic instead of per-pair leaf-profile reconstruction.
"""

from __future__ import annotations

import inspect
from typing import Callable, List, Optional, Sequence

import numpy as np

from ...hardware.coupling import CouplingGraph
from ...pauli.similarity import block_similarity_matrix
from ...routing.layout import Layout
from ..mapping_utils import find_center
from .ir import TetrisBlockIR

DEFAULT_LOOKAHEAD = 10


def estimate_root_gather_cost(
    ir: TetrisBlockIR,
    layout: Layout,
    coupling: CouplingGraph,
) -> int:
    """Estimated SWAPs to cluster the block's root-tree qubits."""
    qubits = ir.root_qubits or ir.leaf_qubits
    if len(qubits) <= 1:
        return 0
    positions = [layout.physical(q) for q in qubits]
    center = find_center(coupling, positions)
    distance = coupling.distance_matrix()
    return sum(max(0, int(distance[p, center]) - 1) for p in positions)


def _similarity_matrix(blocks: Sequence[TetrisBlockIR]) -> np.ndarray:
    """The pairwise Eq. (1) matrix for a list of IR blocks."""
    return block_similarity_matrix([ir.block for ir in blocks])


def lookahead_order(
    blocks: Sequence[TetrisBlockIR],
    lookahead: int = DEFAULT_LOOKAHEAD,
    cost_of: Optional[Callable[[TetrisBlockIR], float]] = None,
) -> List[int]:
    """Return a scheduling order (indices into ``blocks``).

    ``cost_of`` supplies the SWAP-cost estimate for a candidate under the
    *current* mapping; the compiler passes a closure over its live layout
    and calls this incrementally.  When ``cost_of`` is None the tie-break
    is purely similarity (useful for tests).
    """
    remaining = list(range(len(blocks)))
    if not remaining:
        return []
    similarity = _similarity_matrix(blocks)
    first = max(remaining, key=lambda i: (blocks[i].active_length, -i))
    order = [first]
    remaining.remove(first)
    while remaining:
        last_row = similarity[order[-1]]
        ranked = sorted(remaining, key=lambda i: (-last_row[i], i))
        candidates = ranked[: max(1, lookahead)]
        if cost_of is None:
            chosen = candidates[0]
        else:
            chosen = min(candidates, key=lambda i: (cost_of(blocks[i]), i))
        order.append(chosen)
        remaining.remove(chosen)
    return order


class LookaheadScheduler:
    """Stateful scheduler used by the Tetris compiler (pick-next interface).

    ``cost_of(block, layout)`` supplies the SWAP cost of a candidate under
    the live mapping; the compiler passes a trial-placement closure (the
    artifact's ``try_block``).  Without it, a fast distance-based estimate
    is used.

    Candidates are evaluated in similarity-rank order against a running
    incumbent; a ``cost_of`` accepting a ``cap`` keyword receives the
    incumbent's cost so it can abort trials that already reached it
    (exact branch-and-bound — a later candidate only wins on strictly
    smaller cost).
    """

    def __init__(
        self,
        blocks: Sequence[TetrisBlockIR],
        lookahead: int = DEFAULT_LOOKAHEAD,
        cost_of: Optional[Callable] = None,
    ) -> None:
        self.blocks = list(blocks)
        self.lookahead = max(1, lookahead)
        self.cost_of = cost_of
        self._cap_aware = False
        if cost_of is not None:
            try:
                self._cap_aware = (
                    "cap" in inspect.signature(cost_of).parameters
                )
            except (TypeError, ValueError):
                self._cap_aware = False
        self._similarity = _similarity_matrix(self.blocks)
        self._remaining = list(range(len(self.blocks)))
        self._last: Optional[int] = None

    def __bool__(self) -> bool:
        return bool(self._remaining)

    def pick_next(self, layout: Layout, coupling: CouplingGraph) -> TetrisBlockIR:
        if not self._remaining:
            raise IndexError("all blocks scheduled")
        if self._last is None:
            choice = max(
                self._remaining,
                key=lambda i: (self.blocks[i].active_length, -i),
            )
        else:
            last_row = self._similarity[self._last]
            ranked = sorted(
                self._remaining, key=lambda i: (-last_row[i], i)
            )
            candidates = ranked[: self.lookahead]
            # Tie-break equal SWAP cost by similarity rank (candidates are
            # already in descending-similarity order).
            if self.cost_of is not None:
                choice = candidates[0]
                best_cost = None
                for index in candidates:
                    if self._cap_aware:
                        cost = self.cost_of(
                            self.blocks[index], layout, cap=best_cost
                        )
                    else:
                        cost = self.cost_of(self.blocks[index], layout)
                    if best_cost is None or cost < best_cost:
                        best_cost = cost
                        choice = index
                        if best_cost == 0:
                            # SWAP counts cannot go negative: no later
                            # candidate can beat a 0-cost incumbent, and
                            # ties keep the earlier similarity rank.
                            break
            else:
                choice = min(
                    enumerate(candidates),
                    key=lambda pair: (
                        estimate_root_gather_cost(self.blocks[pair[1]], layout, coupling),
                        pair[0],
                    ),
                )[1]
        self._remaining.remove(choice)
        self._last = choice
        return self.blocks[choice]


class SimilarityScheduler:
    """Paulihedral-style scheduler: pure similarity chaining (no SWAP cost).

    This is the "Tetris" (without lookahead) configuration of Fig. 14 —
    Tetris synthesis driven by the baseline scheduler.
    """

    def __init__(self, blocks: Sequence[TetrisBlockIR]) -> None:
        self.blocks = list(blocks)
        self._similarity = _similarity_matrix(self.blocks)
        self._remaining = list(range(len(self.blocks)))
        self._last: Optional[int] = None

    def __bool__(self) -> bool:
        return bool(self._remaining)

    def pick_next(self, layout: Layout, coupling: CouplingGraph) -> TetrisBlockIR:
        if not self._remaining:
            raise IndexError("all blocks scheduled")
        if self._last is None:
            choice = max(
                self._remaining,
                key=lambda i: (self.blocks[i].active_length, -i),
            )
        else:
            last_row = self._similarity[self._last]
            choice = max(self._remaining, key=lambda i: (last_row[i], -i))
        self._remaining.remove(choice)
        self._last = choice
        return self.blocks[choice]
