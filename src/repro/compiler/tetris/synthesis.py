"""Tetris block synthesis with respect to hardware (paper Algorithm 1).

For each Tetris block:

1. *Root clustering* — find a centre node among the root-tree qubits'
   positions and SWAP them into a connected cluster around it.
2. *Leaf attachment* — attach leaf-tree qubits one at a time, each to the
   mapped qubit minimizing the paper's score
   ``score(qn, qm, w) = (d - 1) * w + (2 * #ps if qm is a root qubit else 2)``,
   inserting SWAPs along a shortest path that avoids already-mapped qubits.
3. *Fast bridging* — a leaf edge whose connecting path crosses only free
   (|0>) physical qubits is realized as a CNOT chain through them instead of
   SWAPs (Sec. IV-C); ancillas un-compute across the mirrored tree.
4. *Emission* — with uniform string support, the leaf forest is emitted once
   per block (fan-in at the start, fan-out at the end) so every interior
   leaf CNOT pair cancels structurally; per-string sections carry only the
   root tree, the leaf->root connector CNOTs and the RZ.  With non-uniform
   support (common under Bravyi-Kitaev), strings are emitted individually
   over deterministic BFS trees so the peephole pass can still cancel
   matching neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ...circuit import gate as g
from ...circuit.gate import Gate
from ...hardware.coupling import CouplingGraph
from ...pauli.operators import I
from ...synthesis.basis_change import post_rotation_gates, pre_rotation_gates
from ..mapping_utils import (
    SwapTracker,
    cluster_qubits,
    connect_support,
    find_center,
    physical_spanning_tree,
)
from .ir import TetrisBlockIR

DEFAULT_SWAP_WEIGHT = 3.0


def try_block(
    ir: TetrisBlockIR,
    layout,
    coupling: CouplingGraph,
    swap_weight: float = DEFAULT_SWAP_WEIGHT,
    enable_bridging: bool = True,
) -> int:
    """Trial placement of a block (the artifact's ``try_block``).

    Runs the placement half of Algorithm 1 on a *copy* of the layout and
    returns the SWAP count it would incur.  The lookahead scheduler calls
    this for each top-K candidate and schedules the cheapest.
    """
    from ...circuit.circuit import QuantumCircuit

    scratch_layout = layout.copy()
    scratch = SwapTracker(QuantumCircuit(coupling.num_qubits), scratch_layout)
    root_qubits = list(ir.root_qubits)
    leaf_qubits = list(ir.leaf_qubits)
    if not root_qubits:
        root_qubits = [leaf_qubits.pop()]
    _place_block(
        ir, scratch, coupling, root_qubits, leaf_qubits, swap_weight, enable_bridging
    )
    return scratch.num_swaps


@dataclass
class BlockSynthesisStats:
    """Accounting for one synthesized block."""

    swaps: int = 0
    bridge_overhead_cnots: int = 0
    emitted_cnots: int = 0
    bridged_edges: int = 0
    extra: Dict[str, int] = field(default_factory=dict)


def synthesize_tetris_block(
    ir: TetrisBlockIR,
    tracker: SwapTracker,
    coupling: CouplingGraph,
    swap_weight: float = DEFAULT_SWAP_WEIGHT,
    enable_bridging: bool = True,
) -> BlockSynthesisStats:
    """Synthesize one Tetris block into ``tracker.circuit``."""
    stats = BlockSynthesisStats()
    swaps_before = tracker.num_swaps
    layout = tracker.layout

    root_qubits = list(ir.root_qubits)
    leaf_qubits = list(ir.leaf_qubits)
    if not root_qubits:
        # Degenerate block (all strings identical): promote one leaf to root.
        root_qubits = [leaf_qubits.pop()]

    tree = _place_block(
        ir, tracker, coupling, root_qubits, leaf_qubits, swap_weight, enable_bridging
    )
    if ir.uniform_support and _tree_edges_adjacent(tree, layout, coupling):
        _emit_uniform(ir, tracker, coupling, tree, stats)
    else:
        # Rare placement fallback (or non-uniform support, common under BK):
        # emit string by string with deterministic trees.
        _emit_per_string(ir, tracker, coupling, tree, stats)
    stats.swaps = tracker.num_swaps - swaps_before
    return stats


# ---------------------------------------------------------------------------
# placement


@dataclass
class _BlockTree:
    """The logical tree over a block's qubits plus physical annotations."""

    root: int
    parent: Dict[int, int]
    root_set: Set[int]
    leaf_set: Set[int]
    bridge_paths: Dict[int, List[int]]  # leaf child -> physical path to parent
    depth: Dict[int, int] = field(default_factory=dict)

    def compute_depths(self) -> None:
        self.depth = {self.root: 0}

        def depth_of(node: int) -> int:
            if node not in self.depth:
                self.depth[node] = depth_of(self.parent[node]) + 1
            return self.depth[node]

        for node in self.parent:
            depth_of(node)


def _place_block(
    ir: TetrisBlockIR,
    tracker: SwapTracker,
    coupling: CouplingGraph,
    root_qubits: List[int],
    leaf_qubits: List[int],
    swap_weight: float,
    enable_bridging: bool,
) -> _BlockTree:
    layout = tracker.layout
    distance = coupling.distance_matrix()

    # 1. Cluster the root qubits around the centre (Algorithm 1 lines 4-8),
    # routing around this block's leaf qubits so their arrangement (and the
    # inter-block cancellation it enables, Sec. V-B) survives.
    positions = [layout.physical(q) for q in root_qubits]
    center = find_center(coupling, positions)
    cluster_qubits(tracker, coupling, root_qubits, center, avoid=leaf_qubits)

    position_of = {q: layout.physical(q) for q in root_qubits}
    logical_of = {p: q for q, p in position_of.items()}
    root_position = min(
        position_of.values(), key=lambda p: (int(distance[p, center]), p)
    )
    parent_physical = physical_spanning_tree(
        coupling, list(position_of.values()), root_position
    )
    parent = {logical_of[c]: logical_of[p] for c, p in parent_physical.items()}
    tree = _BlockTree(
        root=logical_of[root_position],
        parent=parent,
        root_set=set(root_qubits),
        leaf_set=set(leaf_qubits),
        bridge_paths={},
    )

    # 2. Attach leaf qubits by score (Algorithm 1 lines 9-14).
    num_ps = ir.num_strings
    mapped: List[int] = list(root_qubits)
    pending_bridges: List[Tuple[int, int]] = []
    unmapped = sorted(leaf_qubits)
    while unmapped:
        best: Optional[Tuple[float, int, int]] = None
        for candidate in unmapped:
            candidate_position = layout.physical(candidate)
            for anchor in mapped:
                anchor_position = layout.physical(anchor)
                hops = int(distance[candidate_position, anchor_position])
                attach_cost = 2 * num_ps if anchor in tree.root_set else 2
                score = (hops - 1) * swap_weight + attach_cost
                key = (score, candidate, anchor)
                if best is None or key < best:
                    best = key
        assert best is not None
        _, chosen, anchor = best
        unmapped.remove(chosen)
        tree.parent[chosen] = anchor
        mapped.append(chosen)

        chosen_position = layout.physical(chosen)
        anchor_position = layout.physical(anchor)
        if coupling.are_connected(chosen_position, anchor_position):
            continue
        blocked = {layout.physical(q) for q in mapped if q not in (chosen, anchor)}
        swap_path = coupling.shortest_path(
            chosen_position, anchor_position, blocked=blocked
        )
        if enable_bridging and anchor not in tree.root_set and swap_path is None:
            # Swapping would displace already-mapped tree qubits; prefer a
            # CNOT bridge through free |0> slots if one survives placement.
            pending_bridges.append((chosen, anchor))
            continue
        _move_adjacent(tracker, coupling, mapped, chosen, anchor, soft_avoid=unmapped)

    # 3. Validate deferred bridges; fall back to SWAPs when a path is taken.
    reserved: Set[int] = set()
    for chosen, anchor in pending_bridges:
        chosen_position = layout.physical(chosen)
        anchor_position = layout.physical(anchor)
        if coupling.are_connected(chosen_position, anchor_position):
            continue
        blocked = {
            layout.physical(q) for q in mapped if q not in (chosen, anchor)
        } | reserved
        path = coupling.shortest_path(chosen_position, anchor_position, blocked=blocked)
        if (
            path is not None
            and all(not layout.is_occupied(node) for node in path[1:-1])
        ):
            tree.bridge_paths[chosen] = path
            reserved.update(path[1:-1])
        else:
            _move_adjacent(tracker, coupling, mapped, chosen, anchor)

    tree.compute_depths()
    return tree


def _move_adjacent(
    tracker: SwapTracker,
    coupling: CouplingGraph,
    mapped: Sequence[int],
    mover: int,
    anchor: int,
    soft_avoid: Sequence[int] = (),
) -> None:
    """SWAP ``mover`` until adjacent to ``anchor`` (avoid mapped positions).

    ``soft_avoid`` positions (e.g. not-yet-attached leaf qubits) are routed
    around when a path exists, so their arrangement is preserved.
    """
    layout = tracker.layout
    source = layout.physical(mover)
    target = layout.physical(anchor)
    blocked = {layout.physical(q) for q in mapped if q not in (mover, anchor)}
    soft = {
        layout.physical(q) for q in soft_avoid if q not in (mover, anchor)
    }
    path = coupling.shortest_path(source, target, blocked=blocked | soft)
    if path is None:
        path = coupling.shortest_path(source, target, blocked=blocked)
    if path is None:
        path = coupling.shortest_path(source, target)
    assert path is not None
    tracker.move_along(path[:-1])


def _tree_edges_adjacent(tree: "_BlockTree", layout, coupling: CouplingGraph) -> bool:
    """True iff every non-bridged tree edge sits on a coupled pair."""
    for child, parent in tree.parent.items():
        if child in tree.bridge_paths:
            continue
        if not coupling.are_connected(layout.physical(child), layout.physical(parent)):
            return False
    return True


# ---------------------------------------------------------------------------
# emission


def _edge_gates(
    tree: _BlockTree,
    layout,
    child: int,
) -> List[Gate]:
    """Physical CNOT(s) realizing tree edge ``child -> parent`` (fan-in)."""
    if child in tree.bridge_paths:
        path = tree.bridge_paths[child]
        return [
            Gate(g.CX, (path[index], path[index + 1]))
            for index in range(len(path) - 1)
        ]
    return [Gate(g.CX, (layout.physical(child), layout.physical(tree.parent[child])))]


def _schedule(tree: _BlockTree, children: Sequence[int]) -> List[int]:
    """Children ordered deepest-first for the fan-in half."""
    return sorted(children, key=lambda c: (-tree.depth[c], c))


def _emit_uniform(
    ir: TetrisBlockIR,
    tracker: SwapTracker,
    coupling: CouplingGraph,
    tree: _BlockTree,
    stats: BlockSynthesisStats,
) -> None:
    circuit = tracker.circuit
    layout = tracker.layout
    first = ir.strings[0]

    leaf_internal = [c for c in tree.parent if c in tree.leaf_set
                     and tree.parent[c] in tree.leaf_set]
    connectors = [c for c in tree.parent if c in tree.leaf_set
                  and tree.parent[c] in tree.root_set]
    root_internal = [c for c in tree.parent if c in tree.root_set]

    # Block prologue: leaf basis changes + leaf-forest fan-in (emitted once).
    for qubit in sorted(tree.leaf_set):
        for gate in pre_rotation_gates(first[qubit], layout.physical(qubit)):
            circuit.append(gate)
    prologue_gates: List[Gate] = []
    for child in _schedule(tree, leaf_internal):
        prologue_gates.extend(_edge_gates(tree, layout, child))
    for gate in prologue_gates:
        circuit.append(gate)

    # Per-string sections: root basis + connectors + root tree + RZ + mirror.
    per_string_children = _schedule(tree, connectors + root_internal)
    root_position = layout.physical(tree.root)
    for string, weight in zip(ir.strings, ir.weights):
        for qubit in sorted(tree.root_set):
            op = string[qubit]
            if op != I:
                for gate in pre_rotation_gates(op, layout.physical(qubit)):
                    circuit.append(gate)
        body: List[Gate] = []
        for child in per_string_children:
            body.extend(_edge_gates(tree, layout, child))
        for gate in body:
            circuit.append(gate)
        circuit.rz(ir.angle * weight, root_position)
        for gate in reversed(body):
            circuit.append(gate)
        for qubit in sorted(tree.root_set):
            op = string[qubit]
            if op != I:
                for gate in post_rotation_gates(op, layout.physical(qubit)):
                    circuit.append(gate)

    # Block epilogue: mirrored leaf forest + leaf basis restoration.
    for gate in reversed(prologue_gates):
        circuit.append(gate)
    for qubit in sorted(tree.leaf_set):
        for gate in post_rotation_gates(first[qubit], layout.physical(qubit)):
            circuit.append(gate)

    # Accounting: a bridged edge of ``h`` hops emits ``h`` CNOTs instead of
    # one; leaf-internal edges are emitted twice per block (fan-in/fan-out).
    for child, path in tree.bridge_paths.items():
        stats.bridge_overhead_cnots += 2 * (len(path) - 2)
        stats.bridged_edges += 1


def _emit_per_string(
    ir: TetrisBlockIR,
    tracker: SwapTracker,
    coupling: CouplingGraph,
    tree: _BlockTree,
    stats: BlockSynthesisStats,
) -> None:
    """Non-uniform support: deterministic per-string trees (BK fallback)."""
    circuit = tracker.circuit
    layout = tracker.layout
    distance = coupling.distance_matrix()
    center = layout.physical(tree.root)

    for string, weight in zip(ir.strings, ir.weights):
        support = list(string.support)
        if not support:
            continue
        connect_support(tracker, coupling, support)
        positions = [layout.physical(q) for q in support]
        root_position = min(positions, key=lambda p: (int(distance[p, center]), p))
        parent_physical = physical_spanning_tree(coupling, positions, root_position)
        depth: Dict[int, int] = {root_position: 0}

        def depth_of(node: int) -> int:
            if node not in depth:
                depth[node] = depth_of(parent_physical[node]) + 1
            return depth[node]

        for node in parent_physical:
            depth_of(node)
        schedule = sorted(parent_physical, key=lambda c: (-depth[c], c))

        for qubit in support:
            for gate in pre_rotation_gates(string[qubit], layout.physical(qubit)):
                circuit.append(gate)
        body = [Gate(g.CX, (child, parent_physical[child])) for child in schedule]
        for gate in body:
            circuit.append(gate)
        circuit.rz(ir.angle * weight, root_position)
        for gate in reversed(body):
            circuit.append(gate)
        for qubit in support:
            for gate in post_rotation_gates(string[qubit], layout.physical(qubit)):
                circuit.append(gate)
