"""Tetris block synthesis with respect to hardware (paper Algorithm 1).

For each Tetris block:

1. *Root clustering* — find a centre node among the root-tree qubits'
   positions and SWAP them into a connected cluster around it.
2. *Leaf attachment* — attach leaf-tree qubits one at a time, each to the
   mapped qubit minimizing the paper's score
   ``score(qn, qm, w) = (d - 1) * w + (2 * #ps if qm is a root qubit else 2)``,
   inserting SWAPs along a shortest path that avoids already-mapped qubits.
3. *Fast bridging* — a leaf edge whose connecting path crosses only free
   (|0>) physical qubits is realized as a CNOT chain through them instead of
   SWAPs (Sec. IV-C); ancillas un-compute across the mirrored tree.
4. *Emission* — with uniform string support, the leaf forest is emitted once
   per block (fan-in at the start, fan-out at the end) so every interior
   leaf CNOT pair cancels structurally; per-string sections carry only the
   root tree, the leaf->root connector CNOTs and the RZ.  With non-uniform
   support (common under Bravyi-Kitaev), strings are emitted individually
   over deterministic BFS trees so the peephole pass can still cancel
   matching neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple


from ...circuit import gate as g
from ...circuit.gate import Gate
from ...hardware.coupling import CouplingGraph
from ...pauli.operators import I
from ...synthesis.basis_change import post_rotation_gates, pre_rotation_gates
from ..mapping_utils import (
    SwapTracker,
    cluster_qubits,
    connect_support,
    find_center,
    physical_spanning_tree,
)
from .ir import TetrisBlockIR

DEFAULT_SWAP_WEIGHT = 3.0


class _CapReached(Exception):
    """A trial placement hit the incumbent's SWAP count."""


class _TrialTracker(SwapTracker):
    """Counting-only tracker for trial placements.

    Emits no gates (trial circuits are discarded) and aborts the
    placement once the SWAP count reaches ``cap``: the count is
    monotone, so a trial at the incumbent's cost can no longer win the
    scheduler's strictly-smaller comparison and its tail is wasted work.
    """

    def __init__(self, layout, cap: Optional[int]) -> None:
        super().__init__(None, layout)
        self.cap = cap

    def swap(self, physical_a: int, physical_b: int) -> None:
        count = self.num_swaps + 1
        if self.cap is not None and count >= self.cap:
            raise _CapReached
        self.num_swaps = count
        self.layout.swap_physical(physical_a, physical_b)


def try_block(
    ir: TetrisBlockIR,
    layout,
    coupling: CouplingGraph,
    swap_weight: float = DEFAULT_SWAP_WEIGHT,
    enable_bridging: bool = True,
    cap: Optional[int] = None,
) -> int:
    """Trial placement of a block (the artifact's ``try_block``).

    Runs the placement half of Algorithm 1 on a *copy* of the layout and
    returns the SWAP count it would incur.  The lookahead scheduler calls
    this for each top-K candidate and schedules the cheapest; ``cap``
    (the incumbent's cost) prunes trials that can no longer win — they
    report ``cap``, which loses every strictly-smaller comparison just
    as their true (>= cap) cost would.
    """
    scratch = _TrialTracker(layout.copy(), cap)
    root_qubits = list(ir.root_qubits)
    leaf_qubits = list(ir.leaf_qubits)
    if not root_qubits:
        root_qubits = [leaf_qubits.pop()]
    try:
        _place_block(
            ir, scratch, coupling, root_qubits, leaf_qubits, swap_weight,
            enable_bridging,
        )
    except _CapReached:
        return cap
    return scratch.num_swaps


@dataclass
class BlockSynthesisStats:
    """Accounting for one synthesized block."""

    swaps: int = 0
    bridge_overhead_cnots: int = 0
    emitted_cnots: int = 0
    bridged_edges: int = 0
    extra: Dict[str, int] = field(default_factory=dict)


def synthesize_tetris_block(
    ir: TetrisBlockIR,
    tracker: SwapTracker,
    coupling: CouplingGraph,
    swap_weight: float = DEFAULT_SWAP_WEIGHT,
    enable_bridging: bool = True,
) -> BlockSynthesisStats:
    """Synthesize one Tetris block into ``tracker.circuit``."""
    stats = BlockSynthesisStats()
    swaps_before = tracker.num_swaps
    layout = tracker.layout

    root_qubits = list(ir.root_qubits)
    leaf_qubits = list(ir.leaf_qubits)
    if not root_qubits:
        # Degenerate block (all strings identical): promote one leaf to root.
        root_qubits = [leaf_qubits.pop()]

    tree = _place_block(
        ir, tracker, coupling, root_qubits, leaf_qubits, swap_weight, enable_bridging
    )
    if ir.uniform_support and _tree_edges_adjacent(tree, layout, coupling):
        _emit_uniform(ir, tracker, coupling, tree, stats)
    else:
        # Rare placement fallback (or non-uniform support, common under BK):
        # emit string by string with deterministic trees.
        _emit_per_string(ir, tracker, coupling, tree, stats)
    stats.swaps = tracker.num_swaps - swaps_before
    return stats


# ---------------------------------------------------------------------------
# placement


@dataclass
class _BlockTree:
    """The logical tree over a block's qubits plus physical annotations."""

    root: int
    parent: Dict[int, int]
    root_set: Set[int]
    leaf_set: Set[int]
    bridge_paths: Dict[int, List[int]]  # leaf child -> physical path to parent
    depth: Dict[int, int] = field(default_factory=dict)

    def compute_depths(self) -> None:
        self.depth = {self.root: 0}

        def depth_of(node: int) -> int:
            if node not in self.depth:
                self.depth[node] = depth_of(self.parent[node]) + 1
            return self.depth[node]

        for node in self.parent:
            depth_of(node)


def _place_block(
    ir: TetrisBlockIR,
    tracker: SwapTracker,
    coupling: CouplingGraph,
    root_qubits: List[int],
    leaf_qubits: List[int],
    swap_weight: float,
    enable_bridging: bool,
) -> _BlockTree:
    layout = tracker.layout
    rows = coupling.distance_rows()
    phys = layout.physical_map()
    # Counting-only trials never emit the tree, so the spanning-tree and
    # depth computations (pure functions of the clustered positions — no
    # SWAPs, no layout changes) are skipped for them.
    trial = tracker.circuit is None

    # 1. Cluster the root qubits around the centre (Algorithm 1 lines 4-8),
    # routing around this block's leaf qubits so their arrangement (and the
    # inter-block cancellation it enables, Sec. V-B) survives.
    positions = [phys[q] for q in root_qubits]
    center = find_center(coupling, positions)
    cluster_qubits(tracker, coupling, root_qubits, center, avoid=leaf_qubits)

    if trial:
        tree = _BlockTree(
            root=root_qubits[0],
            parent={},
            root_set=set(root_qubits),
            leaf_set=set(leaf_qubits),
            bridge_paths={},
        )
    else:
        position_of = {q: phys[q] for q in root_qubits}
        logical_of = {p: q for q, p in position_of.items()}
        root_position = min(
            position_of.values(), key=lambda p: (rows[p][center], p)
        )
        parent_physical = physical_spanning_tree(
            coupling, list(position_of.values()), root_position
        )
        parent = {
            logical_of[c]: logical_of[p] for c, p in parent_physical.items()
        }
        tree = _BlockTree(
            root=logical_of[root_position],
            parent=parent,
            root_set=set(root_qubits),
            leaf_set=set(leaf_qubits),
            bridge_paths={},
        )

    # 2. Attach leaf qubits by score (Algorithm 1 lines 9-14).  Candidate
    # and anchor sets are tiny, so the exact (score, candidate, anchor)
    # minimum reduces to integer-list loops over the cached distance rows.
    # A candidate's per-anchor scores only change when its own position or
    # an anchor's position moves (both detectable by comparing positions),
    # so each round a cached per-candidate best is merely challenged by
    # the one anchor added last round; strictly-smaller updates keep the
    # earliest candidate on score ties, matching the reference ordering.
    num_ps = ir.num_strings
    mapped: List[int] = list(root_qubits)
    attach_costs: List[int] = [
        2 * num_ps if anchor in tree.root_set else 2 for anchor in mapped
    ]
    pending_bridges: List[Tuple[int, int]] = []
    unmapped = sorted(leaf_qubits)
    best_cache: Dict[int, Tuple[float, int]] = {}
    cached_pos: Dict[int, int] = {}
    prev_anchor_positions: List[int] = []
    while unmapped:
        anchor_positions = [phys[q] for q in mapped]
        # Fallback moves can displace mapped qubits: every cached best is
        # stale then, not just the movers'.
        stale_all = (
            anchor_positions[: len(prev_anchor_positions)]
            != prev_anchor_positions
        )
        new_slots = range(len(prev_anchor_positions), len(mapped))
        for candidate in unmapped:
            position = phys[candidate]
            row = rows[position]
            if (
                stale_all
                or candidate not in best_cache
                or cached_pos[candidate] != position
            ):
                score_best = None
                anchor_best = -1
                for slot, anchor_position in enumerate(anchor_positions):
                    score = (
                        (row[anchor_position] - 1) * swap_weight
                        + attach_costs[slot]
                    )
                    if score_best is None or score < score_best:
                        score_best = score
                        anchor_best = mapped[slot]
                    elif score == score_best and mapped[slot] < anchor_best:
                        anchor_best = mapped[slot]
                best_cache[candidate] = (score_best, anchor_best)
                cached_pos[candidate] = position
            else:
                score_best, anchor_best = best_cache[candidate]
                for slot in new_slots:
                    score = (
                        (row[anchor_positions[slot]] - 1) * swap_weight
                        + attach_costs[slot]
                    )
                    if score < score_best:
                        score_best = score
                        anchor_best = mapped[slot]
                    elif score == score_best and mapped[slot] < anchor_best:
                        anchor_best = mapped[slot]
                best_cache[candidate] = (score_best, anchor_best)
        best_row = 0
        best_score, anchor = best_cache[unmapped[0]]
        for index in range(1, len(unmapped)):
            score, slot_anchor = best_cache[unmapped[index]]
            if score < best_score:
                best_score = score
                anchor = slot_anchor
                best_row = index
        chosen = unmapped.pop(best_row)
        del best_cache[chosen]
        prev_anchor_positions = anchor_positions
        tree.parent[chosen] = anchor
        mapped.append(chosen)
        attach_costs.append(2)

        chosen_position = phys[chosen]
        anchor_position = phys[anchor]
        if coupling.are_connected(chosen_position, anchor_position):
            continue
        if enable_bridging and anchor not in tree.root_set:
            blocked = {
                phys[q] for q in mapped if q not in (chosen, anchor)
            }
            swap_path = coupling.shortest_path(
                chosen_position, anchor_position, blocked=blocked
            )
            if swap_path is None:
                # Swapping would displace already-mapped tree qubits;
                # prefer a CNOT bridge through free |0> slots if one
                # survives placement.
                pending_bridges.append((chosen, anchor))
                continue
        _move_adjacent(tracker, coupling, mapped, chosen, anchor, soft_avoid=unmapped)

    # 3. Validate deferred bridges; fall back to SWAPs when a path is taken.
    reserved: Set[int] = set()
    for chosen, anchor in pending_bridges:
        chosen_position = layout.physical(chosen)
        anchor_position = layout.physical(anchor)
        if coupling.are_connected(chosen_position, anchor_position):
            continue
        blocked = {
            layout.physical(q) for q in mapped if q not in (chosen, anchor)
        } | reserved
        path = coupling.shortest_path(chosen_position, anchor_position, blocked=blocked)
        if (
            path is not None
            and all(not layout.is_occupied(node) for node in path[1:-1])
        ):
            tree.bridge_paths[chosen] = path
            reserved.update(path[1:-1])
        else:
            _move_adjacent(tracker, coupling, mapped, chosen, anchor)

    if not trial:
        tree.compute_depths()
    return tree


def _move_adjacent(
    tracker: SwapTracker,
    coupling: CouplingGraph,
    mapped: Sequence[int],
    mover: int,
    anchor: int,
    soft_avoid: Sequence[int] = (),
) -> None:
    """SWAP ``mover`` until adjacent to ``anchor`` (avoid mapped positions).

    ``soft_avoid`` positions (e.g. not-yet-attached leaf qubits) are routed
    around when a path exists, so their arrangement is preserved.
    """
    layout = tracker.layout
    source = layout.physical(mover)
    target = layout.physical(anchor)
    blocked = {layout.physical(q) for q in mapped if q not in (mover, anchor)}
    soft = {
        layout.physical(q) for q in soft_avoid if q not in (mover, anchor)
    }
    path = coupling.shortest_path(source, target, blocked=blocked | soft)
    if path is None:
        path = coupling.shortest_path(source, target, blocked=blocked)
    if path is None:
        path = coupling.shortest_path(source, target)
    assert path is not None
    tracker.move_along(path[:-1])


def _tree_edges_adjacent(tree: "_BlockTree", layout, coupling: CouplingGraph) -> bool:
    """True iff every non-bridged tree edge sits on a coupled pair."""
    for child, parent in tree.parent.items():
        if child in tree.bridge_paths:
            continue
        if not coupling.are_connected(layout.physical(child), layout.physical(parent)):
            return False
    return True


# ---------------------------------------------------------------------------
# emission


def _edge_gates(
    tree: _BlockTree,
    layout,
    child: int,
) -> List[Gate]:
    """Physical CNOT(s) realizing tree edge ``child -> parent`` (fan-in)."""
    if child in tree.bridge_paths:
        path = tree.bridge_paths[child]
        return [
            Gate(g.CX, (path[index], path[index + 1]))
            for index in range(len(path) - 1)
        ]
    return [Gate(g.CX, (layout.physical(child), layout.physical(tree.parent[child])))]


def _schedule(tree: _BlockTree, children: Sequence[int]) -> List[int]:
    """Children ordered deepest-first for the fan-in half."""
    return sorted(children, key=lambda c: (-tree.depth[c], c))


def _emit_uniform(
    ir: TetrisBlockIR,
    tracker: SwapTracker,
    coupling: CouplingGraph,
    tree: _BlockTree,
    stats: BlockSynthesisStats,
) -> None:
    circuit = tracker.circuit
    layout = tracker.layout
    first = ir.strings[0]

    leaf_internal = [c for c in tree.parent if c in tree.leaf_set
                     and tree.parent[c] in tree.leaf_set]
    connectors = [c for c in tree.parent if c in tree.leaf_set
                  and tree.parent[c] in tree.root_set]
    root_internal = [c for c in tree.parent if c in tree.root_set]

    # Block prologue: leaf basis changes + leaf-forest fan-in (emitted once).
    for qubit in sorted(tree.leaf_set):
        for gate in pre_rotation_gates(first[qubit], layout.physical(qubit)):
            circuit.append(gate)
    prologue_gates: List[Gate] = []
    for child in _schedule(tree, leaf_internal):
        prologue_gates.extend(_edge_gates(tree, layout, child))
    circuit.extend(prologue_gates)

    # Per-string sections: root basis + connectors + root tree + RZ + mirror.
    # The layout is fixed throughout emission, so the tree-edge CNOT body
    # is identical for every string — built once, appended per string.
    per_string_children = _schedule(tree, connectors + root_internal)
    root_position = layout.physical(tree.root)
    root_sorted = sorted(tree.root_set)
    root_positions = [layout.physical(q) for q in root_sorted]
    body: List[Gate] = []
    for child in per_string_children:
        body.extend(_edge_gates(tree, layout, child))
    body_reversed = body[::-1]
    for string, weight in zip(ir.strings, ir.weights):
        for qubit, position in zip(root_sorted, root_positions):
            op = string[qubit]
            if op != I:
                for gate in pre_rotation_gates(op, position):
                    circuit.append(gate)
        circuit.extend(body)
        circuit.rz(ir.angle * weight, root_position)
        circuit.extend(body_reversed)
        for qubit, position in zip(root_sorted, root_positions):
            op = string[qubit]
            if op != I:
                for gate in post_rotation_gates(op, position):
                    circuit.append(gate)

    # Block epilogue: mirrored leaf forest + leaf basis restoration.
    circuit.extend(reversed(prologue_gates))
    for qubit in sorted(tree.leaf_set):
        for gate in post_rotation_gates(first[qubit], layout.physical(qubit)):
            circuit.append(gate)

    # Accounting: a bridged edge of ``h`` hops emits ``h`` CNOTs instead of
    # one; leaf-internal edges are emitted twice per block (fan-in/fan-out).
    for child, path in tree.bridge_paths.items():
        stats.bridge_overhead_cnots += 2 * (len(path) - 2)
        stats.bridged_edges += 1


def _emit_per_string(
    ir: TetrisBlockIR,
    tracker: SwapTracker,
    coupling: CouplingGraph,
    tree: _BlockTree,
    stats: BlockSynthesisStats,
) -> None:
    """Non-uniform support: deterministic per-string trees (BK fallback)."""
    circuit = tracker.circuit
    layout = tracker.layout
    distance = coupling.distance_matrix()
    center = layout.physical(tree.root)

    for string, weight in zip(ir.strings, ir.weights):
        support = list(string.support)
        if not support:
            continue
        connect_support(tracker, coupling, support)
        positions = [layout.physical(q) for q in support]
        root_position = min(positions, key=lambda p: (int(distance[p, center]), p))
        parent_physical = physical_spanning_tree(coupling, positions, root_position)
        depth: Dict[int, int] = {root_position: 0}

        def depth_of(node: int) -> int:
            if node not in depth:
                depth[node] = depth_of(parent_physical[node]) + 1
            return depth[node]

        for node in parent_physical:
            depth_of(node)
        schedule = sorted(parent_physical, key=lambda c: (-depth[c], c))

        for qubit in support:
            for gate in pre_rotation_gates(string[qubit], layout.physical(qubit)):
                circuit.append(gate)
        body = [Gate(g.CX, (child, parent_physical[child])) for child in schedule]
        for gate in body:
            circuit.append(gate)
        circuit.rz(ir.angle * weight, root_position)
        for gate in reversed(body):
            circuit.append(gate)
        for qubit in support:
            for gate in post_rotation_gates(string[qubit], layout.physical(qubit)):
                circuit.append(gate)
