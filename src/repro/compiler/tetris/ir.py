"""Tetris-IR: the refined Pauli-string block representation (paper Sec. IV-B).

A :class:`TetrisBlockIR` annotates a Pauli block with its *root-tree qubit
set* (qubits whose operators differ across the block's strings) and its
*leaf-tree qubit set* (qubits sharing one operator across all strings).  The
textual rendering follows Fig. 6(b): a qubit-order annotation, the common
section lower-cased and written only on the first and last strings.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ...pauli.block import PauliBlock
from ...pauli.operators import I
from ...pauli.pauli_string import PauliString


def _gray_order(block: PauliBlock) -> list:
    """Greedy minimal-Hamming-distance chain over the block's strings.

    Adjacent strings that agree on more operators let more of the shared
    tree cancel between the mirrored fan-out and the next fan-in, so the
    ordering starts from the lexicographically smallest string and always
    appends the closest remaining string.  Distances come from one batch
    Hamming-matrix kernel over the block's bitplanes; lexicographic ranks
    (stable, so duplicates keep index order) replace per-comparison
    character tie-breaks.
    """
    table = block.table
    distance = table.hamming_matrix()
    rank = table.lex_ranks()
    remaining = list(range(len(block)))
    current = min(remaining, key=lambda i: rank[i])
    order = [current]
    remaining.remove(current)
    while remaining:
        row = distance[current]
        current = min(remaining, key=lambda i: (row[i], rank[i]))
        order.append(current)
        remaining.remove(current)
    return order


class TetrisBlockIR:
    """A Pauli block refined with root/leaf qubit-set annotations."""

    __slots__ = (
        "block", "root_qubits", "leaf_qubits", "uniform_support",
        "string_order",
    )

    def __init__(self, block: PauliBlock, sort_strings: bool = True) -> None:
        # Reordering is only sound when the strings pairwise commute (always
        # true for UCCSD excitation blocks, not for arbitrary input).
        order = range(len(block))
        if sort_strings and len(block) > 1 and block.pairwise_commuting():
            order = _gray_order(block)
            block = block.reordered(order)
        # IR string i is input-block string string_order[i].  Duplicate
        # strings resolve to ascending input indices (the Gray chain
        # tie-breaks equal distances on stable lexicographic rank).
        self.string_order: Tuple[int, ...] = tuple(order)
        self.block = block
        leaf = block.common_qubits()
        support = block.support
        if len(block) == 1:
            # A single string has everything in common with itself; the
            # rotation still needs a root, so treat the support as root.
            leaf = frozenset()
        self.leaf_qubits: Tuple[int, ...] = tuple(sorted(leaf))
        self.root_qubits: Tuple[int, ...] = tuple(sorted(support - leaf))
        # Every per-string support is a subset of the block support, so the
        # supports are uniform iff every row weight equals the active length.
        self.uniform_support = bool(
            (block.table.weights() == len(support)).all()
        )

    # -- convenience views -------------------------------------------------------

    @property
    def strings(self) -> Tuple[PauliString, ...]:
        return self.block.strings

    @property
    def weights(self) -> Tuple[float, ...]:
        return self.block.weights

    @property
    def angle(self) -> float:
        return self.block.angle

    @property
    def num_strings(self) -> int:
        return len(self.block)

    @property
    def num_qubits(self) -> int:
        return self.block.num_qubits

    @property
    def active_length(self) -> int:
        return self.block.active_length

    def leaf_ops(self) -> dict:
        """``{leaf qubit: shared operator}``."""
        first = self.block.strings[0]
        return {q: first[q] for q in self.leaf_qubits}

    def qubit_order(self) -> Tuple[int, ...]:
        """Root qubits first, then leaf qubits (the Fig. 6 annotation)."""
        return self.root_qubits + self.leaf_qubits

    # -- rendering ---------------------------------------------------------------

    def render(self) -> str:
        """Human-readable Tetris-IR text (Fig. 6(b) style)."""
        order = self.qubit_order()
        leaf_set = set(self.leaf_qubits)
        lines: List[str] = ["".join(str(q % 10) for q in order)]
        last = self.num_strings - 1
        for index, string in enumerate(self.strings):
            chars = []
            for qubit in order:
                op = string[qubit]
                if qubit in leaf_set:
                    if index in (0, last):
                        chars.append(op.lower())
                    # middle strings omit the common section entirely
                else:
                    chars.append(op if op != I else I)
            lines.append("".join(chars))
        weights = ", ".join(f"{w:g}" for w in self.weights)
        lines.append(f"weights: {{{weights}}}, angle: {self.angle:g}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"TetrisBlockIR({self.num_strings} strings, "
            f"root={list(self.root_qubits)}, leaf={list(self.leaf_qubits)})"
        )


def lower_blocks(blocks: Sequence[PauliBlock], sort_strings: bool = True) -> List[TetrisBlockIR]:
    """Lower plain Pauli blocks into Tetris-IR."""
    return [TetrisBlockIR(block, sort_strings=sort_strings) for block in blocks]
