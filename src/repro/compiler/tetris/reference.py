"""Frozen scalar reference implementation of Tetris block placement.

Verbatim pre-vectorization copies of the trial-placement path —
``try_block``, ``_place_block``, the ``find_center`` / ``cluster_qubits``
mapping helpers and the lookahead scheduling loop — plus a driver
(:func:`run_tetris_reference`) mirroring ``TetrisSynthesisPass.run``.
They are the "old" side of ``benchmarks/bench_passes.py``'s wall-clock
cells and the oracle for the differential tests.  Emission
(``_emit_uniform`` / ``_emit_per_string``) is imported from the live
module: it is not touched by the vectorization.  Do not optimize this
module.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ...circuit.circuit import QuantumCircuit
from ...hardware.coupling import CouplingGraph
from ...pauli.similarity import block_similarity_matrix
from ...routing.layout import Layout
from ..mapping_utils import SwapTracker, physical_spanning_tree
from .ir import TetrisBlockIR
from .synthesis import (
    DEFAULT_SWAP_WEIGHT,
    BlockSynthesisStats,
    _BlockTree,
    _emit_per_string,
    _emit_uniform,
    _tree_edges_adjacent,
)

DEFAULT_LOOKAHEAD = 10


def find_center_reference(
    coupling: CouplingGraph,
    positions: Sequence[int],
    candidates: Optional[Iterable[int]] = None,
) -> int:
    """Physical node minimizing total distance to ``positions``."""
    distance = coupling.distance_matrix()
    pool = candidates if candidates is not None else range(coupling.num_qubits)
    return min(
        pool,
        key=lambda node: (
            sum(int(distance[node, p]) for p in positions),
            max((int(distance[node, p]) for p in positions), default=0),
            node,
        ),
    )


def cluster_qubits_reference(
    tracker: SwapTracker,
    coupling: CouplingGraph,
    logical_qubits: Sequence[int],
    center: int,
    avoid: Sequence[int] = (),
) -> List[int]:
    """Move ``logical_qubits`` until their positions induce a connected set."""
    layout = tracker.layout
    if not logical_qubits:
        return []
    distance = coupling.distance_matrix()
    remaining = list(logical_qubits)
    # Seed the cluster with the qubit closest to the requested centre.
    remaining.sort(key=lambda q: (int(distance[layout.physical(q)][center]), q))
    first = remaining.pop(0)
    cluster: Set[int] = {layout.physical(first)}

    while remaining:
        remaining.sort(
            key=lambda q: (
                min(int(distance[layout.physical(q)][c]) for c in cluster),
                q,
            )
        )
        mover = remaining.pop(0)
        position = layout.physical(mover)
        if any(coupling.are_connected(position, c) for c in cluster) or position in cluster:
            cluster.add(position)
            continue
        target = min(cluster, key=lambda c: (int(distance[position][c]), c))
        soft_avoid = {
            layout.physical(q) for q in avoid if q not in (mover,)
        }
        path = coupling.shortest_path(position, target, blocked=cluster | soft_avoid)
        if path is None:
            path = coupling.shortest_path(position, target, blocked=cluster)
        if path is None:
            path = coupling.shortest_path(position, target)
        assert path is not None, "coupling graph must be connected"
        # Stop one hop short: adjacency to the cluster is enough.
        tracker.move_along(path[:-1])
        cluster.add(layout.physical(mover))
    return [layout.physical(q) for q in logical_qubits]


def _move_adjacent_reference(
    tracker: SwapTracker,
    coupling: CouplingGraph,
    mapped: Sequence[int],
    mover: int,
    anchor: int,
    soft_avoid: Sequence[int] = (),
) -> None:
    """SWAP ``mover`` until adjacent to ``anchor`` (avoid mapped positions)."""
    layout = tracker.layout
    source = layout.physical(mover)
    target = layout.physical(anchor)
    blocked = {layout.physical(q) for q in mapped if q not in (mover, anchor)}
    soft = {
        layout.physical(q) for q in soft_avoid if q not in (mover, anchor)
    }
    path = coupling.shortest_path(source, target, blocked=blocked | soft)
    if path is None:
        path = coupling.shortest_path(source, target, blocked=blocked)
    if path is None:
        path = coupling.shortest_path(source, target)
    assert path is not None
    tracker.move_along(path[:-1])


def _place_block_reference(
    ir: TetrisBlockIR,
    tracker: SwapTracker,
    coupling: CouplingGraph,
    root_qubits: List[int],
    leaf_qubits: List[int],
    swap_weight: float,
    enable_bridging: bool,
) -> _BlockTree:
    layout = tracker.layout
    distance = coupling.distance_matrix()

    # 1. Cluster the root qubits around the centre (Algorithm 1 lines 4-8).
    positions = [layout.physical(q) for q in root_qubits]
    center = find_center_reference(coupling, positions)
    cluster_qubits_reference(tracker, coupling, root_qubits, center, avoid=leaf_qubits)

    position_of = {q: layout.physical(q) for q in root_qubits}
    logical_of = {p: q for q, p in position_of.items()}
    root_position = min(
        position_of.values(), key=lambda p: (int(distance[p, center]), p)
    )
    parent_physical = physical_spanning_tree(
        coupling, list(position_of.values()), root_position
    )
    parent = {logical_of[c]: logical_of[p] for c, p in parent_physical.items()}
    tree = _BlockTree(
        root=logical_of[root_position],
        parent=parent,
        root_set=set(root_qubits),
        leaf_set=set(leaf_qubits),
        bridge_paths={},
    )

    # 2. Attach leaf qubits by score (Algorithm 1 lines 9-14).
    num_ps = ir.num_strings
    mapped: List[int] = list(root_qubits)
    pending_bridges: List[Tuple[int, int]] = []
    unmapped = sorted(leaf_qubits)
    while unmapped:
        best: Optional[Tuple[float, int, int]] = None
        for candidate in unmapped:
            candidate_position = layout.physical(candidate)
            for anchor in mapped:
                anchor_position = layout.physical(anchor)
                hops = int(distance[candidate_position, anchor_position])
                attach_cost = 2 * num_ps if anchor in tree.root_set else 2
                score = (hops - 1) * swap_weight + attach_cost
                key = (score, candidate, anchor)
                if best is None or key < best:
                    best = key
        assert best is not None
        _, chosen, anchor = best
        unmapped.remove(chosen)
        tree.parent[chosen] = anchor
        mapped.append(chosen)

        chosen_position = layout.physical(chosen)
        anchor_position = layout.physical(anchor)
        if coupling.are_connected(chosen_position, anchor_position):
            continue
        blocked = {layout.physical(q) for q in mapped if q not in (chosen, anchor)}
        swap_path = coupling.shortest_path(
            chosen_position, anchor_position, blocked=blocked
        )
        if enable_bridging and anchor not in tree.root_set and swap_path is None:
            # Swapping would displace already-mapped tree qubits; prefer a
            # CNOT bridge through free |0> slots if one survives placement.
            pending_bridges.append((chosen, anchor))
            continue
        _move_adjacent_reference(
            tracker, coupling, mapped, chosen, anchor, soft_avoid=unmapped
        )

    # 3. Validate deferred bridges; fall back to SWAPs when a path is taken.
    reserved: Set[int] = set()
    for chosen, anchor in pending_bridges:
        chosen_position = layout.physical(chosen)
        anchor_position = layout.physical(anchor)
        if coupling.are_connected(chosen_position, anchor_position):
            continue
        blocked = {
            layout.physical(q) for q in mapped if q not in (chosen, anchor)
        } | reserved
        path = coupling.shortest_path(chosen_position, anchor_position, blocked=blocked)
        if (
            path is not None
            and all(not layout.is_occupied(node) for node in path[1:-1])
        ):
            tree.bridge_paths[chosen] = path
            reserved.update(path[1:-1])
        else:
            _move_adjacent_reference(tracker, coupling, mapped, chosen, anchor)

    tree.compute_depths()
    return tree


def try_block_reference(
    ir: TetrisBlockIR,
    layout,
    coupling: CouplingGraph,
    swap_weight: float = DEFAULT_SWAP_WEIGHT,
    enable_bridging: bool = True,
) -> int:
    """Trial placement of a block on a layout copy; returns the SWAP count."""
    scratch_layout = layout.copy()
    scratch = SwapTracker(QuantumCircuit(coupling.num_qubits), scratch_layout)
    root_qubits = list(ir.root_qubits)
    leaf_qubits = list(ir.leaf_qubits)
    if not root_qubits:
        root_qubits = [leaf_qubits.pop()]
    _place_block_reference(
        ir, scratch, coupling, root_qubits, leaf_qubits, swap_weight, enable_bridging
    )
    return scratch.num_swaps


def synthesize_tetris_block_reference(
    ir: TetrisBlockIR,
    tracker: SwapTracker,
    coupling: CouplingGraph,
    swap_weight: float = DEFAULT_SWAP_WEIGHT,
    enable_bridging: bool = True,
) -> BlockSynthesisStats:
    """Synthesize one Tetris block into ``tracker.circuit``."""
    stats = BlockSynthesisStats()
    swaps_before = tracker.num_swaps
    layout = tracker.layout

    root_qubits = list(ir.root_qubits)
    leaf_qubits = list(ir.leaf_qubits)
    if not root_qubits:
        # Degenerate block (all strings identical): promote one leaf to root.
        root_qubits = [leaf_qubits.pop()]

    tree = _place_block_reference(
        ir, tracker, coupling, root_qubits, leaf_qubits, swap_weight, enable_bridging
    )
    if ir.uniform_support and _tree_edges_adjacent(tree, layout, coupling):
        _emit_uniform(ir, tracker, coupling, tree, stats)
    else:
        _emit_per_string(ir, tracker, coupling, tree, stats)
    stats.swaps = tracker.num_swaps - swaps_before
    return stats


class _LookaheadSchedulerReference:
    """Verbatim copy of the pre-vectorization ``LookaheadScheduler``."""

    def __init__(
        self,
        blocks: Sequence[TetrisBlockIR],
        lookahead: int = DEFAULT_LOOKAHEAD,
        cost_of=None,
    ) -> None:
        self.blocks = list(blocks)
        self.lookahead = max(1, lookahead)
        self.cost_of = cost_of
        self._similarity = block_similarity_matrix([ir.block for ir in self.blocks])
        self._remaining = list(range(len(self.blocks)))
        self._last: Optional[int] = None

    def __bool__(self) -> bool:
        return bool(self._remaining)

    def pick_next(self, layout: Layout, coupling: CouplingGraph) -> TetrisBlockIR:
        if not self._remaining:
            raise IndexError("all blocks scheduled")
        if self._last is None:
            choice = max(
                self._remaining,
                key=lambda i: (self.blocks[i].active_length, -i),
            )
        else:
            last_row = self._similarity[self._last]
            ranked = sorted(
                self._remaining, key=lambda i: (-last_row[i], i)
            )
            candidates = ranked[: self.lookahead]
            # Tie-break equal SWAP cost by similarity rank (candidates are
            # already in descending-similarity order).
            choice = min(
                enumerate(candidates),
                key=lambda pair: (self.cost_of(self.blocks[pair[1]], layout), pair[0]),
            )[1]
        self._remaining.remove(choice)
        self._last = choice
        return self.blocks[choice]


def run_tetris_reference(
    ir_blocks: Sequence[TetrisBlockIR],
    layout: Layout,
    coupling: CouplingGraph,
    swap_weight: float = DEFAULT_SWAP_WEIGHT,
    lookahead: int = DEFAULT_LOOKAHEAD,
    enable_bridging: bool = True,
) -> Tuple[QuantumCircuit, int, List[int]]:
    """The pre-vectorization ``TetrisSynthesisPass.run`` loop.

    Mutates ``layout`` in place (pass a copy) and returns
    ``(circuit, num_swaps, block_order)``.
    """
    circuit = QuantumCircuit(coupling.num_qubits, name="tetris")
    tracker = SwapTracker(circuit, layout)

    def trial_cost(candidate, live_layout):
        return try_block_reference(
            candidate,
            live_layout,
            coupling,
            swap_weight=swap_weight,
            enable_bridging=enable_bridging,
        )

    scheduler = _LookaheadSchedulerReference(
        ir_blocks, lookahead=lookahead, cost_of=trial_cost
    )
    index_of = {id(ir): position for position, ir in enumerate(ir_blocks)}
    block_order: List[int] = []
    while scheduler:
        ir = scheduler.pick_next(layout, coupling)
        block_order.append(index_of[id(ir)])
        synthesize_tetris_block_reference(
            ir,
            tracker,
            coupling,
            swap_weight=swap_weight,
            enable_bridging=enable_bridging,
        )
    return circuit, tracker.num_swaps, block_order
