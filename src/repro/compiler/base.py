"""Compiler interfaces and the shared compilation-result record.

Three things live here, shared by every compiler and by the pipeline
layer that the compilers are built on:

- the paper's logical gate accounting
  (:func:`logical_cnot_count`, :func:`logical_one_qubit_count`) — the
  "original circuit" baselines that cancellation ratios are measured
  against;
- :class:`CompilationResult` — the uniform record every compiler
  produces: the physical circuit plus layout and SWAP/bridge accounting,
  with :meth:`CompilationResult.metrics` deriving the paper's metric
  set from it;
- :class:`Compiler` — the base class.  Since the pipeline refactor each
  concrete compiler is a thin wrapper that delegates to its registered
  pass sequence in :data:`repro.pipeline.registry.PIPELINES`
  (via :meth:`Compiler.run_pipeline`), so the class API and the
  spec-string API always agree gate-for-gate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..circuit import gate as g
from ..circuit.circuit import QuantumCircuit
from ..circuit.duration import circuit_duration
from ..circuit.metrics import CircuitMetrics, depth
from ..hardware.coupling import CouplingGraph
from ..pauli.block import PauliBlock
from ..routing.layout import Layout


def logical_cnot_count(blocks: Sequence[PauliBlock]) -> int:
    """The paper's "original circuit CNOT" count: ``sum 2*(weight - 1)``."""
    total = 0
    for block in blocks:
        for string in block.strings:
            weight = string.weight
            if weight > 1:
                total += 2 * (weight - 1)
    return total


def logical_one_qubit_count(blocks: Sequence[PauliBlock]) -> int:
    """The paper's Table-I 1Q accounting: two basis gates per non-Z operator.

    RZ rotations are virtual on IBM hardware and excluded — this rule
    reproduces Table I exactly (e.g. LiH: 4992).
    """
    total = 0
    for block in blocks:
        for string in block.strings:
            for qubit in string.support:
                if string[qubit] != "Z":
                    total += 2
    return total


@dataclass
class CompilationResult:
    """Everything an experiment needs about one compiled workload."""

    circuit: QuantumCircuit
    initial_layout: Optional[Layout] = None
    final_layout: Optional[Layout] = None
    num_swaps: int = 0
    bridge_overhead_cnots: int = 0
    logical_cnots: int = 0
    compile_seconds: float = 0.0
    compiler_name: str = ""
    extra: Dict[str, float] = field(default_factory=dict)

    def metrics(self) -> CircuitMetrics:
        decomposed = self.circuit.decompose_swaps()
        cnots = decomposed.count_ops().get(g.CX, 0)
        oneq = decomposed.num_one_qubit_gates()
        swap_cnots = 3 * self.num_swaps
        emitted_logical = cnots - swap_cnots - self.bridge_overhead_cnots
        return CircuitMetrics(
            num_qubits=self.circuit.num_qubits,
            total_gates=cnots + oneq,
            cnot_gates=cnots,
            one_qubit_gates=oneq,
            depth=depth(self.circuit),
            duration=circuit_duration(self.circuit),
            swap_cnots=swap_cnots,
            bridge_cnots=self.bridge_overhead_cnots,
            logical_cnots=self.logical_cnots,
            canceled_cnots=max(0, self.logical_cnots - emitted_logical),
            compile_seconds=self.compile_seconds,
            extra=dict(self.extra),
        )


class Compiler:
    """Base class: compile a list of Pauli blocks onto a coupling graph."""

    name = "base"

    def compile(
        self,
        blocks: Sequence[PauliBlock],
        coupling: CouplingGraph,
        num_logical: Optional[int] = None,
    ) -> CompilationResult:
        raise NotImplementedError

    def run_pipeline(
        self,
        pipeline: str,
        params: Dict,
        blocks: Sequence[PauliBlock],
        coupling: CouplingGraph,
        num_logical: Optional[int] = None,
    ) -> CompilationResult:
        """Delegate to a registered pass sequence (no cleanup tail).

        The shared implementation behind every concrete ``compile``:
        builds the named pipeline's synthesis passes with ``params`` and
        runs them, so class construction (``TetrisCompiler(lookahead=0)``)
        and spec strings (``"tetris:no-lookahead"``) share one code path.
        """
        from ..pipeline.manager import PassManager
        from ..pipeline.registry import PIPELINES

        builder = PIPELINES.get(pipeline).builder
        manager = PassManager(builder(**params), name=self.name)
        return manager.run(blocks, coupling, num_logical=num_logical).result

    def compile_timed(
        self,
        blocks: Sequence[PauliBlock],
        coupling: CouplingGraph,
        num_logical: Optional[int] = None,
    ) -> CompilationResult:
        """``compile`` plus wall-clock accounting."""
        start = time.perf_counter()
        result = self.compile(blocks, coupling, num_logical)
        result.compile_seconds = time.perf_counter() - start
        result.compiler_name = self.name
        return result


def blocks_num_qubits(blocks: Sequence[PauliBlock]) -> int:
    if not blocks:
        raise ValueError("no blocks to compile")
    return blocks[0].num_qubits


def interaction_pairs(blocks: Sequence[PauliBlock]) -> List:
    """Logical 2Q interaction pairs (consecutive support qubits per string)."""
    pairs = []
    for block in blocks:
        for string in block.strings:
            support = string.support
            for index in range(len(support) - 1):
                pairs.append((support[index], support[index + 1]))
    return pairs
