"""The max_cancel baseline (paper Sec. VI-A, Figs. 2, 17, 18).

Fixes the logical circuit to a *single leaf tree* per block — the extreme
end of the Tetris tuning spectrum that maximizes 2Q cancellation — while
ignoring hardware connectivity entirely.  The hardware-oblivious logical
circuit is then routed by the generic SWAP router (the paper transpiles it
with Qiskit for the same reason), which is where the method pays: maximal
cancellation, maximal SWAP insertion.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..circuit import gate as g
from ..circuit.circuit import QuantumCircuit
from ..circuit.gate import Gate
from ..hardware.coupling import CouplingGraph
from ..pauli.block import PauliBlock
from ..pauli.operators import I
from ..synthesis.basis_change import post_rotation_gates, pre_rotation_gates
from .base import CompilationResult, Compiler, blocks_num_qubits
from .tetris.ir import TetrisBlockIR, lower_blocks


def max_cancel_logical_circuit(
    blocks: Sequence[PauliBlock],
    sort_strings: bool = True,
) -> QuantumCircuit:
    """The single-leaf-tree logical circuit with structural cancellation.

    For each block, the common-operator qubits form one chain (the single
    leaf tree) feeding into a chain over the root qubits; the leaf chain and
    its basis changes are emitted once per block.
    """
    num_qubits = blocks_num_qubits(blocks)
    circuit = QuantumCircuit(num_qubits, name="max_cancel")
    for ir in lower_blocks(blocks, sort_strings=sort_strings):
        _emit_block_single_leaf_tree(circuit, ir)
    return circuit


def _emit_block_single_leaf_tree(circuit: QuantumCircuit, ir: TetrisBlockIR) -> None:
    leaf = list(ir.leaf_qubits)
    root = list(ir.root_qubits)
    if not root:
        root = [leaf.pop()]
    first = ir.strings[0]

    # Single leaf tree: a chain leaf[0] -> ... -> leaf[-1], emitted once per
    # block.  Every string contains the leaf (common) operators by
    # definition, so hoisting is always sound; only the per-string root
    # section varies (some strings may lack some root qubits under BK).
    leaf_chain = [
        Gate(g.CX, (leaf[index], leaf[index + 1])) for index in range(len(leaf) - 1)
    ]
    for qubit in leaf:
        for gate in pre_rotation_gates(first[qubit], qubit):
            circuit.append(gate)
    for gate in leaf_chain:
        circuit.append(gate)

    for string, weight in zip(ir.strings, ir.weights):
        string_roots = [q for q in root if string[q] != I]
        for qubit in string_roots:
            for gate in pre_rotation_gates(string[qubit], qubit):
                circuit.append(gate)
        body: List[Gate] = []
        if leaf and string_roots:
            body.append(Gate(g.CX, (leaf[-1], string_roots[0])))
        body.extend(
            Gate(g.CX, (string_roots[index], string_roots[index + 1]))
            for index in range(len(string_roots) - 1)
        )
        rotation_qubit = string_roots[-1] if string_roots else leaf[-1]
        for gate in body:
            circuit.append(gate)
        circuit.rz(ir.angle * weight, rotation_qubit)
        for gate in reversed(body):
            circuit.append(gate)
        for qubit in string_roots:
            for gate in post_rotation_gates(string[qubit], qubit):
                circuit.append(gate)

    for gate in reversed(leaf_chain):
        circuit.append(gate)
    for qubit in leaf:
        for gate in post_rotation_gates(first[qubit], qubit):
            circuit.append(gate)


class MaxCancelCompiler(Compiler):
    """Single-leaf-tree logical synthesis followed by generic routing —
    the ``max-cancel`` pipeline (``order-similarity``,
    ``synth-single-leaf``, ``layout``, ``route``)."""

    name = "max_cancel"

    def __init__(self, sort_strings: bool = True) -> None:
        self.sort_strings = sort_strings

    def compile(
        self,
        blocks: Sequence[PauliBlock],
        coupling: CouplingGraph,
        num_logical: Optional[int] = None,
    ) -> CompilationResult:
        return self.run_pipeline(
            "max-cancel",
            {"sort_strings": self.sort_strings},
            blocks,
            coupling,
            num_logical,
        )
