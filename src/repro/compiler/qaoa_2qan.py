"""QAOA-specialized compilers.

QAOA cost-layer terms all commute, so gates may be scheduled in any order —
the freedom 2QAN (Lao & Browne, ISCA 2022) exploits.  Two compilers live
here:

- :class:`TwoQANLikeCompiler` — commutation-aware greedy scheduling: emit
  every currently-executable edge, then insert the SWAP that best serves
  the remaining edges.
- :class:`TetrisQAOACompiler` — the paper's Sec. V-C optimization: the same
  commuting freedom, plus a lookahead choice between SWAP insertion and
  fast bridging, and mid-circuit measurement to retire finished qubits so
  their slots become |0> bridge ancillas.

Both take the MaxCut blocks of :mod:`repro.qaoa` (one ZZ string per edge).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..circuit import gate as g
from ..circuit.circuit import QuantumCircuit
from ..circuit.gate import Gate
from ..hardware.coupling import CouplingGraph
from ..pauli.block import PauliBlock
from ..routing.layout import Layout, greedy_interaction_layout
from .base import (
    CompilationResult,
    Compiler,
    blocks_num_qubits,
    logical_cnot_count,
)
from .mapping_utils import SwapTracker


def extract_edges(blocks: Sequence[PauliBlock]) -> List[Tuple[int, int, float]]:
    """``(u, v, angle)`` per ZZ block; validates the QAOA shape."""
    edges = []
    for block in blocks:
        if len(block) != 1:
            raise ValueError("QAOA blocks must contain exactly one string")
        string = block.strings[0]
        support = string.support
        if len(support) != 2 or any(string[q] != "Z" for q in support):
            raise ValueError(f"not a ZZ term: {string}")
        edges.append((support[0], support[1], block.angle * block.weights[0]))
    return edges


def _emit_zz(circuit: QuantumCircuit, pu: int, pv: int, angle: float) -> None:
    circuit.append(Gate(g.CX, (pu, pv)))
    circuit.rz(angle, pv)
    circuit.append(Gate(g.CX, (pu, pv)))


class TwoQANLikeCompiler(Compiler):
    """Commutation-aware greedy scheduling with mapping-serving SWAPs."""

    name = "2qan-like"

    def __init__(self, include_wrappers: bool = True) -> None:
        self.include_wrappers = include_wrappers

    def compile(
        self,
        blocks: Sequence[PauliBlock],
        coupling: CouplingGraph,
        num_logical: Optional[int] = None,
    ) -> CompilationResult:
        num_logical = num_logical or blocks_num_qubits(blocks)
        edges = extract_edges(blocks)
        layout = greedy_interaction_layout(
            num_logical, coupling, [(u, v) for u, v, _ in edges]
        )
        initial = layout.copy()
        circuit = QuantumCircuit(coupling.num_qubits, name="2qan-like")
        tracker = SwapTracker(circuit, layout)
        if self.include_wrappers:
            for logical in range(num_logical):
                circuit.h(layout.physical(logical))

        remaining = list(range(len(edges)))
        distance = coupling.distance_matrix()
        while remaining:
            progressed = True
            while progressed:
                progressed = False
                for index in list(remaining):
                    u, v, angle = edges[index]
                    pu, pv = layout.physical(u), layout.physical(v)
                    if coupling.are_connected(pu, pv):
                        _emit_zz(circuit, pu, pv, angle)
                        remaining.remove(index)
                        progressed = True
            if not remaining:
                break
            # Everything left is distant: pick the closest edge and insert
            # the single SWAP that minimizes the remaining total distance.
            def edge_distance(index: int) -> int:
                u, v, _ = edges[index]
                return int(distance[layout.physical(u), layout.physical(v)])

            target = min(remaining, key=lambda i: (edge_distance(i), i))
            u, v, _ = edges[target]
            pu, pv = layout.physical(u), layout.physical(v)
            path = coupling.shortest_path(pu, pv)
            assert path is not None

            def total_cost_after(swap: Tuple[int, int]) -> int:
                layout.swap_physical(*swap)
                cost = sum(edge_distance(i) for i in remaining)
                layout.swap_physical(*swap)
                return cost

            candidates = [(pu, path[1]), (pv, path[-2])]
            chosen = min(candidates, key=lambda s: (total_cost_after(s), s))
            tracker.swap(*chosen)

        if self.include_wrappers:
            for logical in range(num_logical):
                physical = layout.physical(logical)
                circuit.rx(0.3, physical)
                circuit.measure(physical)

        return CompilationResult(
            circuit=circuit,
            initial_layout=initial,
            final_layout=layout,
            num_swaps=tracker.num_swaps,
            logical_cnots=logical_cnot_count(blocks),
            compiler_name=self.name,
        )


class TetrisQAOACompiler(Compiler):
    """Tetris' QAOA path: SWAP-vs-bridge lookahead + qubit reuse (Sec. V-C)."""

    name = "tetris-qaoa"

    def __init__(self, include_wrappers: bool = True) -> None:
        self.include_wrappers = include_wrappers

    def compile(
        self,
        blocks: Sequence[PauliBlock],
        coupling: CouplingGraph,
        num_logical: Optional[int] = None,
    ) -> CompilationResult:
        num_logical = num_logical or blocks_num_qubits(blocks)
        edges = extract_edges(blocks)
        layout = greedy_interaction_layout(
            num_logical, coupling, [(u, v) for u, v, _ in edges]
        )
        initial = layout.copy()
        circuit = QuantumCircuit(coupling.num_qubits, name="tetris-qaoa")
        tracker = SwapTracker(circuit, layout)
        if self.include_wrappers:
            for logical in range(num_logical):
                circuit.h(layout.physical(logical))

        pending: Dict[int, Set[int]] = {q: set() for q in range(num_logical)}
        for index, (u, v, _) in enumerate(edges):
            pending[u].add(index)
            pending[v].add(index)
        remaining = list(range(len(edges)))
        retired: Set[int] = set()
        bridge_overhead = 0
        distance = coupling.distance_matrix()

        def finish_edge(index: int) -> None:
            remaining.remove(index)
            u, v, _ = edges[index]
            for logical in (u, v):
                pending[logical].discard(index)
                # Qubit reuse needs the measure+reset wrappers; without them
                # the slot cannot be certified |0>, so keep it occupied.
                if (
                    self.include_wrappers
                    and not pending[logical]
                    and logical not in retired
                ):
                    retired.add(logical)
                    physical = layout.physical(logical)
                    circuit.rx(0.3, physical)
                    circuit.measure(physical)
                    circuit.reset(physical)
                    layout.remove(logical)

        while remaining:
            progressed = True
            while progressed:
                progressed = False
                for index in list(remaining):
                    u, v, angle = edges[index]
                    pu, pv = layout.physical(u), layout.physical(v)
                    if coupling.are_connected(pu, pv):
                        _emit_zz(circuit, pu, pv, angle)
                        finish_edge(index)
                        progressed = True
            if not remaining:
                break

            def edge_distance(index: int) -> int:
                u, v, _ = edges[index]
                return int(distance[layout.physical(u), layout.physical(v)])

            target = min(remaining, key=lambda i: (edge_distance(i), i))
            u, v, angle = edges[target]
            pu, pv = layout.physical(u), layout.physical(v)
            path = coupling.shortest_path(pu, pv)
            assert path is not None
            # Bridges may detour through free |0> qubits: 2 CNOTs per hop
            # still beats a SWAP route (3 per hop) for modest detours.
            occupied = {
                node
                for node in range(coupling.num_qubits)
                if layout.is_occupied(node) and node not in (pu, pv)
            }
            free_path = coupling.shortest_path(pu, pv, blocked=occupied)
            swap_cost = 3 * (len(path) - 2) + 2
            bridge_viable = (
                free_path is not None and 2 * (len(free_path) - 1) <= swap_cost
            )
            # Lookahead (Sec. V-C): if a SWAP would also shorten *other*
            # pending edges, prefer it; otherwise bridge when viable.
            others = [i for i in remaining if i != target]

            def future_gain(swap: Tuple[int, int]) -> int:
                before = sum(edge_distance(i) for i in others)
                layout.swap_physical(*swap)
                after = sum(edge_distance(i) for i in others)
                layout.swap_physical(*swap)
                return before - after

            swap_helps_future = others and max(
                future_gain((pu, path[1])), future_gain((pv, path[-2]))
            ) > 0
            if bridge_viable and not swap_helps_future:
                # Bridge: endpoints stay put, ancillas restored by the
                # mirrored chain.
                chain = [
                    Gate(g.CX, (free_path[i], free_path[i + 1]))
                    for i in range(len(free_path) - 1)
                ]
                for gate in chain:
                    circuit.append(gate)
                circuit.rz(angle, free_path[-1])
                for gate in reversed(chain):
                    circuit.append(gate)
                bridge_overhead += 2 * (len(free_path) - 2)
                finish_edge(target)
                continue

            def total_cost_after(swap: Tuple[int, int]) -> int:
                layout.swap_physical(*swap)
                cost = sum(edge_distance(i) for i in remaining)
                layout.swap_physical(*swap)
                return cost

            candidates = [(pu, path[1]), (pv, path[-2])]
            chosen = min(candidates, key=lambda s: (total_cost_after(s), s))
            tracker.swap(*chosen)

        return CompilationResult(
            circuit=circuit,
            initial_layout=initial,
            final_layout=layout,
            num_swaps=tracker.num_swaps,
            bridge_overhead_cnots=bridge_overhead,
            logical_cnots=logical_cnot_count(blocks),
            compiler_name=self.name,
        )
