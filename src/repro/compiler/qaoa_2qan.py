"""QAOA-specialized compilers.

QAOA cost-layer terms all commute, so gates may be scheduled in any order —
the freedom 2QAN (Lao & Browne, ISCA 2022) exploits.  Two compilers live
here:

- :class:`TwoQANLikeCompiler` — commutation-aware greedy scheduling: emit
  every currently-executable edge, then insert the SWAP that best serves
  the remaining edges.  Pipeline ``2qan-like``: ``extract-edges``,
  ``layout``, ``synth-2qan``.
- :class:`TetrisQAOACompiler` — the paper's Sec. V-C optimization: the same
  commuting freedom, plus a lookahead choice between SWAP insertion and
  fast bridging, and mid-circuit measurement to retire finished qubits so
  their slots become |0> bridge ancillas.  Pipeline ``tetris-qaoa``:
  ``extract-edges``, ``layout``, ``synth-qaoa-reuse``.

Both take the MaxCut blocks of :mod:`repro.qaoa` (one ZZ string per edge).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..hardware.coupling import CouplingGraph
from ..pauli.bits import popcount
from ..pauli.block import PauliBlock
from ..pauli.table import PauliTable
from .base import CompilationResult, Compiler


def extract_edges(blocks: Sequence[PauliBlock]) -> List[Tuple[int, int, float]]:
    """``(u, v, angle)`` per ZZ block; validates the QAOA shape.

    The whole cost layer is checked as one packed table: a ZZ term has an
    empty x bitplane and a z bitplane of weight 2, so shape validation and
    endpoint extraction are two popcount kernels over all blocks at once.
    """
    for block in blocks:
        if len(block) != 1:
            raise ValueError("QAOA blocks must contain exactly one string")
    if not blocks:
        return []
    table = PauliTable.from_strings([block.strings[0] for block in blocks])
    x_weight = popcount(table.x).sum(axis=1, dtype=np.int64)
    z_weight = popcount(table.z).sum(axis=1, dtype=np.int64)
    bad = np.flatnonzero((x_weight != 0) | (z_weight != 2))
    if bad.size:
        raise ValueError(f"not a ZZ term: {table.row(int(bad[0]))}")
    endpoints = np.nonzero(table.support_bits())[1].reshape(len(blocks), 2)
    return [
        (int(endpoints[i, 0]), int(endpoints[i, 1]),
         block.angle * block.weights[0])
        for i, block in enumerate(blocks)
    ]


class TwoQANLikeCompiler(Compiler):
    """Commutation-aware greedy scheduling with mapping-serving SWAPs."""

    name = "2qan-like"

    def __init__(self, include_wrappers: bool = True) -> None:
        self.include_wrappers = include_wrappers

    def compile(
        self,
        blocks: Sequence[PauliBlock],
        coupling: CouplingGraph,
        num_logical: Optional[int] = None,
    ) -> CompilationResult:
        return self.run_pipeline(
            "2qan-like",
            {"include_wrappers": self.include_wrappers},
            blocks,
            coupling,
            num_logical,
        )


class TetrisQAOACompiler(Compiler):
    """Tetris' QAOA path: SWAP-vs-bridge lookahead + qubit reuse (Sec. V-C)."""

    name = "tetris-qaoa"

    def __init__(self, include_wrappers: bool = True) -> None:
        self.include_wrappers = include_wrappers

    def compile(
        self,
        blocks: Sequence[PauliBlock],
        coupling: CouplingGraph,
        num_logical: Optional[int] = None,
    ) -> CompilationResult:
        return self.run_pipeline(
            "tetris-qaoa",
            {"include_wrappers": self.include_wrappers},
            blocks,
            coupling,
            num_logical,
        )
