"""Paulihedral-style baseline compiler (Li et al., ASPLOS 2022).

Reproduces the behaviour the paper attributes to Paulihedral:

- blocks are chained greedily by similarity (maximizing adjacent 1Q
  cancellation), with no SWAP-cost lookahead;
- strings within a block are sorted lexicographically (adjacent strings
  differ in few operators -> maximal 1Q cancellation);
- per string, the compiler finds the largest connected component of the
  string's mapped support, SWAPs the remaining qubits toward it (SWAP-centric
  mapping), and synthesizes a BFS tree rooted at the component centre —
  without Tetris' root/leaf distinction, so common-operator qubits end up
  anywhere in the tree and 2Q cancellation is mostly missed (Fig. 4(b));
- gate cancellation itself is left to the downstream O3 pass
  ("PH leaves the job of canceling gates to Qiskit O3").
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..circuit import gate as g
from ..circuit.gate import Gate
from ..hardware.coupling import CouplingGraph
from ..pauli.block import PauliBlock
from ..pauli.similarity import block_similarity_matrix
from ..synthesis.basis_change import post_rotation_gates, pre_rotation_gates
from .base import CompilationResult, Compiler
from .mapping_utils import (
    SwapTracker,
    connect_support,
    find_center,
    physical_spanning_tree,
)


def similarity_chain_order(blocks: Sequence[PauliBlock]) -> List[int]:
    """Greedy nearest-neighbour chain over block similarity (Eq. 1).

    The full pairwise similarity matrix is one batch kernel over the
    blocks' packed leaf tables; the greedy chain then only indexes it.
    """
    remaining = list(range(len(blocks)))
    if not remaining:
        return []
    similarity = block_similarity_matrix(blocks)
    first = max(remaining, key=lambda i: (blocks[i].active_length, -i))
    order = [first]
    remaining.remove(first)
    while remaining:
        last_row = similarity[order[-1]]
        choice = max(remaining, key=lambda i: (last_row[i], -i))
        order.append(choice)
        remaining.remove(choice)
    return order


def emit_string_over_spanning_tree(
    tracker: SwapTracker,
    coupling: CouplingGraph,
    string,
    angle: float,
) -> None:
    """Connect the string's support, then emit a centre-rooted BFS tree."""
    circuit = tracker.circuit
    layout = tracker.layout
    support = list(string.support)
    if not support:
        return
    if len(support) == 1:
        qubit = layout.physical(support[0])
        for gate in pre_rotation_gates(string[support[0]], qubit):
            circuit.append(gate)
        circuit.rz(angle, qubit)
        for gate in post_rotation_gates(string[support[0]], qubit):
            circuit.append(gate)
        return

    connect_support(tracker, coupling, support)
    positions = [layout.physical(q) for q in support]
    root_position = find_center(coupling, positions, candidates=positions)
    parent = physical_spanning_tree(coupling, positions, root_position)

    depth = {root_position: 0}

    def depth_of(node: int) -> int:
        if node not in depth:
            depth[node] = depth_of(parent[node]) + 1
        return depth[node]

    for node in parent:
        depth_of(node)
    schedule = sorted(parent, key=lambda c: (-depth[c], c))

    for qubit in support:
        for gate in pre_rotation_gates(string[qubit], layout.physical(qubit)):
            circuit.append(gate)
    body = [Gate(g.CX, (child, parent[child])) for child in schedule]
    for gate in body:
        circuit.append(gate)
    circuit.rz(angle, root_position)
    for gate in reversed(body):
        circuit.append(gate)
    for qubit in support:
        for gate in post_rotation_gates(string[qubit], layout.physical(qubit)):
            circuit.append(gate)


class PaulihedralCompiler(Compiler):
    """The SWAP-centric baseline — the ``paulihedral`` pipeline
    (``order-similarity``, ``layout``, ``synth-spanning-tree``)."""

    name = "paulihedral"

    def __init__(self, sort_strings: bool = True) -> None:
        self.sort_strings = sort_strings

    def compile(
        self,
        blocks: Sequence[PauliBlock],
        coupling: CouplingGraph,
        num_logical: Optional[int] = None,
    ) -> CompilationResult:
        return self.run_pipeline(
            "paulihedral",
            {"sort_strings": self.sort_strings},
            blocks,
            coupling,
            num_logical,
        )
