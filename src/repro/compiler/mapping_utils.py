"""Shared hardware-mapping machinery for the block compilers.

These helpers operate on a mutable :class:`Layout` and append SWAP gates to
a target circuit, maintaining the invariant that emitted SWAPs are always on
coupled pairs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


from ..circuit.circuit import QuantumCircuit
from ..hardware.coupling import CouplingGraph
from ..routing.layout import Layout


class SwapTracker:
    """Counts SWAPs emitted into a circuit while updating a layout."""

    def __init__(self, circuit: QuantumCircuit, layout: Layout) -> None:
        self.circuit = circuit
        self.layout = layout
        self.num_swaps = 0

    def swap(self, physical_a: int, physical_b: int) -> None:
        self.circuit.swap(physical_a, physical_b)
        self.layout.swap_physical(physical_a, physical_b)
        self.num_swaps += 1

    def move_along(self, path: Sequence[int]) -> None:
        """Move the occupant of ``path[0]`` to ``path[-1]`` hop by hop."""
        for index in range(len(path) - 1):
            self.swap(path[index], path[index + 1])


def find_center(
    coupling: CouplingGraph,
    positions: Sequence[int],
    candidates: Optional[Iterable[int]] = None,
) -> int:
    """Physical node minimizing total distance to ``positions``.

    This is Algorithm 1's ``findCenter``: the clustering target for the
    root-tree qubits.  The centre need not be one of ``positions``.
    Scored by exact integer ``(sum, max, node)`` ordering over the cached
    distance rows — position sets are tiny, so plain list indexing beats
    array reductions here.
    """
    rows = coupling.distance_rows()
    if candidates is None:
        # The centre is a pure function of the (unordered) position set:
        # trial and chosen placements of a block, and unmoved blocks
        # across scheduling rounds, all repeat the same query.
        cache_key = tuple(sorted(positions))
        cache = coupling._center_cache
        cached = cache.get(cache_key)
        if cached is not None:
            return cached
        pool = range(coupling.num_qubits)
    else:
        cache_key = None
        pool = candidates
    best = None
    best_key: Optional[Tuple[int, int, int]] = None
    for node in pool:
        row = rows[node]
        total = 0
        worst = 0
        for p in positions:
            d = row[p]
            total += d
            if d > worst:
                worst = d
        key = (total, worst, node)
        if best_key is None or key < best_key:
            best_key = key
            best = node
    assert best is not None, "empty candidate pool"
    if cache_key is not None:
        if len(coupling._center_cache) > 100_000:
            coupling._center_cache.clear()
        coupling._center_cache[cache_key] = best
    return best


def cluster_qubits(
    tracker: SwapTracker,
    coupling: CouplingGraph,
    logical_qubits: Sequence[int],
    center: int,
    avoid: Sequence[int] = (),
) -> List[int]:
    """Move ``logical_qubits`` until their positions induce a connected set.

    Qubits are processed by increasing distance to the cluster; each is
    moved along a shortest path (avoiding already-clustered positions as
    interior nodes) until it becomes adjacent to the cluster.  Returns the
    final physical positions in the order of ``logical_qubits``.

    ``avoid`` lists *logical* qubits whose positions should be routed
    around when possible (the caller's leaf-tree qubits: displacing them
    would scramble the arrangement that inter-block cancellation relies
    on).  Avoidance is best-effort — paths fall back to shorter blocking
    sets when no route exists.
    """
    layout = tracker.layout
    if not logical_qubits:
        return []
    rows = coupling.distance_rows()
    phys = layout.physical_map()
    remaining = list(logical_qubits)
    # Only each round's (distance, qubit)-minimum matters — the scalar
    # reference re-sorts the whole list every round, so a single tracked
    # minimum per round is decision-identical.  Clusters hold a handful
    # of qubits, so integer list lookups outrun array reductions.
    first = min(remaining, key=lambda q: (rows[phys[q]][center], q))
    remaining.remove(first)
    cluster: Set[int] = {phys[first]}

    while remaining:
        mover = remaining[0]
        nearest = None
        for q in remaining:
            row = rows[phys[q]]
            d = None
            for c in cluster:
                hop = row[c]
                if d is None or hop < d:
                    d = hop
            if nearest is None or d < nearest or (d == nearest and q < mover):
                nearest = d
                mover = q
        remaining.remove(mover)
        position = phys[mover]
        # nearest == 0 means the mover already sits on a cluster node;
        # nearest == 1 means it is adjacent to one.
        if nearest <= 1:
            cluster.add(position)
            continue
        row = rows[position]
        target = min(cluster, key=lambda c: (row[c], c))
        soft_avoid = {phys[q] for q in avoid if q != mover}
        path = coupling.shortest_path(position, target, blocked=cluster | soft_avoid)
        if path is None:
            path = coupling.shortest_path(position, target, blocked=cluster)
        if path is None:
            path = coupling.shortest_path(position, target)
        assert path is not None, "coupling graph must be connected"
        # Stop one hop short: adjacency to the cluster is enough.
        tracker.move_along(path[:-1])
        cluster.add(phys[mover])
    return [phys[q] for q in logical_qubits]


def connect_support(
    tracker: SwapTracker,
    coupling: CouplingGraph,
    logical_qubits: Sequence[int],
) -> None:
    """Paulihedral-style connectivity fix: grow the largest component.

    Finds the maximum connected component of the qubits' positions and
    moves the remaining qubits (nearest first) until everything is one
    component.
    """
    layout = tracker.layout
    positions = {q: layout.physical(q) for q in logical_qubits}
    if not positions:
        return
    components = _components(coupling, list(positions.values()))
    components.sort(key=len, reverse=True)
    cluster: Set[int] = set(components[0])
    outside = [q for q in logical_qubits if positions[q] not in cluster]
    distance = coupling.distance_matrix()
    while outside:
        outside.sort(
            key=lambda q: (
                min(int(distance[layout.physical(q)][c]) for c in cluster),
                q,
            )
        )
        mover = outside.pop(0)
        position = layout.physical(mover)
        if position in cluster or any(
            coupling.are_connected(position, c) for c in cluster
        ):
            cluster.add(position)
            continue
        target = min(cluster, key=lambda c: (int(distance[position][c]), c))
        path = coupling.shortest_path(position, target, blocked=cluster)
        if path is None:
            path = coupling.shortest_path(position, target)
        assert path is not None
        tracker.move_along(path[:-1])
        cluster.add(layout.physical(mover))


def _components(coupling: CouplingGraph, nodes: Sequence[int]) -> List[List[int]]:
    node_set = set(nodes)
    seen: Set[int] = set()
    components: List[List[int]] = []
    for node in sorted(node_set):
        if node in seen:
            continue
        component = [node]
        seen.add(node)
        frontier = [node]
        while frontier:
            current = frontier.pop()
            for neighbor in coupling.neighbors(current):
                if neighbor in node_set and neighbor not in seen:
                    seen.add(neighbor)
                    component.append(neighbor)
                    frontier.append(neighbor)
        components.append(component)
    return components


def physical_spanning_tree(
    coupling: CouplingGraph,
    positions: Sequence[int],
    root_position: int,
) -> Dict[int, int]:
    """BFS spanning tree ``child_position -> parent_position`` over
    ``positions`` (must induce a connected subgraph containing the root).

    Deterministic: neighbors are visited in ascending index order, so equal
    inputs always produce equal trees — which lets identical consecutive
    strings cancel through the peephole pass.
    """
    node_set = set(positions)
    if root_position not in node_set:
        raise ValueError("root must be one of the positions")
    parent: Dict[int, int] = {}
    seen = {root_position}
    frontier = [root_position]
    while frontier:
        next_frontier: List[int] = []
        for node in frontier:
            for neighbor in sorted(coupling.neighbors(node)):
                if neighbor in node_set and neighbor not in seen:
                    seen.add(neighbor)
                    parent[neighbor] = node
                    next_frontier.append(neighbor)
        frontier = next_frontier
    if len(seen) != len(node_set):
        raise ValueError("positions do not induce a connected subgraph")
    return parent
