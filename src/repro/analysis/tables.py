"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(rows: Sequence[Dict], columns: Sequence[str] = ()) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns else list(rows[0].keys())
    rendered: List[List[str]] = [[_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[index]) for r in rendered))
        for index, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    ruler = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(r[i].rjust(widths[i]) for i in range(len(columns)))
        for r in rendered
    ]
    return "\n".join([header, ruler, *body])


def format_cell(value) -> str:
    """One table cell: compact, stable float formatting.

    Shared by the aligned-text tables here and the markdown renderer in
    :mod:`repro.report.render`, so a number reads identically in the
    runner's terminal output and in ``docs/RESULTS.md``.
    """
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.4g}"
    return str(value)


#: Backwards-compatible private alias (pre-report-layer name).
_cell = format_cell


def improvement(baseline: float, measured: float) -> float:
    """Relative reduction in percent (negative = measured smaller)."""
    if baseline == 0:
        return 0.0
    return 100.0 * (measured - baseline) / baseline
