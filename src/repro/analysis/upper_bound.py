"""Analytic maximum-cancellation estimate (paper Observation 2 / Fig. 2).

The paper obtains its "max_cancel" numbers by *placing the subset of qubits
that share a maximum number of non-identity operators in the leaf section of
the tree*: for every pair of consecutive strings, all tree edges that lie
inside the shared-operator region cancel.  For strings ``s`` and ``t`` with
``m`` matching non-identity operators, a tree whose leaf section covers the
matched region lets ``m`` edges cancel in each direction (bounded by either
string's edge count).  Strings are ordered greedily for similarity —
within blocks by minimal Hamming distance, across blocks by leaf-tree
similarity — the same ordering freedom the compilers have.

The per-pair arithmetic runs on the packed symplectic table: row weights
and consecutive-row match counts are single popcount kernels over the
ordered string list instead of per-pair character scans.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..compiler.paulihedral import similarity_chain_order
from ..compiler.tetris.ir import lower_blocks
from ..pauli.block import PauliBlock
from ..pauli.pauli_string import PauliString
from ..pauli.table import PauliTable


def max_cancel_upper_bound(blocks: Sequence[PauliBlock]) -> float:
    """The Fig. 2 "max_cancel" ratio: cancellable / original logical CNOTs."""
    order = similarity_chain_order(blocks)
    strings: List[PauliString] = []
    for index in order:
        strings.extend(lower_blocks([blocks[index]])[0].strings)
    if not strings:
        return 0.0
    table = PauliTable.from_strings(strings)
    weights = table.weights()
    total = int((2 * (weights - 1))[weights > 1].sum())
    if total == 0:
        return 0.0
    if len(strings) < 2:
        return 0.0
    # CNOTs cancellable between consecutive exponentials: the matched
    # region, bounded by either tree's edge count, zero when disjoint.
    matched = table.select(np.arange(len(strings) - 1)).match_counts(
        table.select(np.arange(1, len(strings)))
    )
    per_pair = np.minimum(matched, np.minimum(weights[:-1] - 1, weights[1:] - 1))
    per_pair = np.where(matched == 0, 0, per_pair)
    cancelable = int((2 * per_pair).sum())
    return min(1.0, cancelable / total)
