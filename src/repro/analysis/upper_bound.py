"""Analytic maximum-cancellation estimate (paper Observation 2 / Fig. 2).

The paper obtains its "max_cancel" numbers by *placing the subset of qubits
that share a maximum number of non-identity operators in the leaf section of
the tree*: for every pair of consecutive strings, all tree edges that lie
inside the shared-operator region cancel.  For strings ``s`` and ``t`` with
``m`` matching non-identity operators, a tree whose leaf section covers the
matched region lets ``m`` edges cancel in each direction (bounded by either
string's edge count).  Strings are ordered greedily for similarity —
within blocks by minimal Hamming distance, across blocks by leaf-tree
similarity — the same ordering freedom the compilers have.
"""

from __future__ import annotations

from typing import List, Sequence

from ..compiler.paulihedral import similarity_chain_order
from ..compiler.tetris.ir import lower_blocks
from ..pauli.block import PauliBlock
from ..pauli.pauli_string import PauliString


def _pair_cancelable(first: PauliString, second: PauliString) -> int:
    """CNOTs cancellable between two adjacent exponentials (one direction)."""
    matched = len(first.common_qubits(second))
    if matched == 0:
        return 0
    return min(matched, first.weight - 1, second.weight - 1)


def max_cancel_upper_bound(blocks: Sequence[PauliBlock]) -> float:
    """The Fig. 2 "max_cancel" ratio: cancellable / original logical CNOTs."""
    order = similarity_chain_order(blocks)
    strings: List[PauliString] = []
    for index in order:
        strings.extend(lower_blocks([blocks[index]])[0].strings)
    total = sum(2 * (s.weight - 1) for s in strings if s.weight > 1)
    if total == 0:
        return 0.0
    cancelable = 0
    for first, second in zip(strings, strings[1:]):
        cancelable += 2 * _pair_cancelable(first, second)
    return min(1.0, cancelable / total)
