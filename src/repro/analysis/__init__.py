"""Analysis helpers: compile-and-measure, table rendering."""

from .runner import RunRecord, compile_and_measure, logical_cancel_ratio
from .tables import format_cell, format_table, improvement
from .upper_bound import max_cancel_upper_bound

__all__ = [
    "RunRecord",
    "compile_and_measure",
    "logical_cancel_ratio",
    "format_cell",
    "format_table",
    "improvement",
    "max_cancel_upper_bound",
]
