"""One-stop compile-and-measure used by every experiment harness."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

from ..circuit.metrics import CircuitMetrics
from ..compiler.base import CompilationResult, Compiler
from ..hardware.coupling import CouplingGraph
from ..hardware.lattices import fully_connected
from ..passes.pipeline import optimize_with_report
from ..pauli.block import PauliBlock


@dataclass
class RunRecord:
    """A compiled workload with its post-optimization metrics."""

    compiler_name: str
    metrics: CircuitMetrics
    result: CompilationResult
    optimize_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.result.compile_seconds + self.optimize_seconds


def compile_and_measure(
    compiler: Compiler,
    blocks: Sequence[PauliBlock],
    coupling: CouplingGraph,
    optimization_level: int = 3,
) -> RunRecord:
    """Compile, run the O3-style cleanup, and measure.

    ``optimization_level``: 0 = raw compiler output, 1 = cancellation only,
    3 = cancellation + 1Q consolidation (the paper's default pipeline).
    """
    result = compiler.compile_timed(blocks, coupling)
    start = time.perf_counter()
    optimized, _report = optimize_with_report(result.circuit, optimization_level)
    optimize_seconds = time.perf_counter() - start
    measured = CompilationResult(
        circuit=optimized,
        initial_layout=result.initial_layout,
        final_layout=result.final_layout,
        num_swaps=result.num_swaps,
        bridge_overhead_cnots=result.bridge_overhead_cnots,
        logical_cnots=result.logical_cnots,
        compile_seconds=result.compile_seconds,
        compiler_name=result.compiler_name,
        extra=result.extra,
    )
    metrics = measured.metrics()
    metrics.compile_seconds = result.compile_seconds
    return RunRecord(
        compiler_name=result.compiler_name,
        metrics=metrics,
        result=measured,
        optimize_seconds=optimize_seconds,
    )


def logical_cancel_ratio(
    compiler: Compiler,
    blocks: Sequence[PauliBlock],
    num_qubits: Optional[int] = None,
) -> float:
    """Cancellation ratio on an all-to-all device (no SWAPs) — Fig. 2/17."""
    num_qubits = num_qubits or blocks[0].num_qubits
    record = compile_and_measure(compiler, blocks, fully_connected(num_qubits))
    return record.metrics.cancel_ratio
