"""Command-line compilation tool.

Compile any built-in benchmark with any compiler onto any device and print
the metrics (optionally dumping OpenQASM).  Workloads, devices, and
compilers are registry spec strings — legacy names still work, and
compilers are full pipeline specs (variants, parameter assignments, or
custom pass lists)::

    python -m repro.cli --bench LiH --compiler tetris --device ithaca
    python -m repro.cli --bench chem:LiH --device grid:8x8
    python -m repro.cli --bench LiH --compiler tetris:no-bridge --profile-passes
    python -m repro.cli --bench chem:LiH --parametric   # template + timed bind
    python -m repro.cli --bench qaoa:Rand-16 --compiler tetris-qaoa --qasm out.qasm
    python -m repro.cli --bench ucc:UCC-10 --compiler paulihedral --blocks 50

Batch mode submits a whole job matrix to the parallel compilation
service (cache-first, ``REPRO_JOBS`` workers) and streams results to
JSONL/CSV::

    python -m repro.cli batch --bench LiH,BeH2 --compiler tetris,paulihedral \
        --scale smoke --jobs 4 --jsonl results.jsonl --csv results.csv
    python -m repro.cli batch --bench chem:LiH --device grid:4x4,linear:16 \
        --scale smoke --jsonl results.jsonl
    python -m repro.cli batch --bench chem:LiH --compiler tetris \
        --profile-passes --csv profiled.csv
    python -m repro.cli batch --matrix jobs.json --jsonl results.jsonl

Report mode regenerates the unified experiment report (every paper
table/figure through the manifest, rendered to ``docs/RESULTS.md`` with
per-experiment CSVs and regression gating — see :mod:`repro.report`)::

    python -m repro.cli report --quick --check
    python -m repro.cli report --only table2,fig14 --scale small
    python -m repro.cli report --list

Trace mode runs single/batch compilation inside a tracing session
(:mod:`repro.obs`) and exports a Perfetto-loadable ``trace.json``, an
optional JSONL span log, and a terminal summary tree — including spans
collected inside worker processes::

    python -m repro.cli trace single --bench chem:LiH --profile-passes
    python -m repro.cli trace batch --out trace.json --bench LiH,BeH2 \
        --compiler tetris,paulihedral --scale smoke --jobs 2
    REPRO_TRACE=trace.json python -m repro.cli batch --bench LiH ...

Cache mode inspects and maintains the on-disk result cache::

    python -m repro.cli cache stats
    python -m repro.cli cache stats --json
    python -m repro.cli cache trim --max 500
    python -m repro.cli cache clear

Serve mode runs the persistent compile daemon (:mod:`repro.serve`):
a warm worker pool, an in-memory hot cache over the disk cache,
in-flight request dedup, and per-tenant quotas, over HTTP or stdio::

    python -m repro.cli serve --port 8421 --workers 4
    python -m repro.cli serve --stdio --workers 0

Discover the vocabulary (families, aliases, and the parameter grammar)
with ``--list-benchmarks``, ``--list-compilers``, and ``--list-devices``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from . import obs
from .analysis import format_table
from .circuit import to_qasm
from .hardware.families import DEVICE_FAMILIES, canonical_device_spec
from .pipeline import (
    PASSES,
    PIPELINES,
    PipelineError,
    resolve_compiler_spec,
    run_pipeline,
    split_opt_suffix,
)
from .registry import RegistryError
from .service import (
    CompileJob,
    CsvSink,
    JsonlSink,
    ResultCache,
    cache_enabled,
    execute_jobs,
    grid_jobs,
    resolve_device,
    worker_count,
)
from .service.cache import CACHE_DIR_ENV
from .service.jobs import SCALES
from .workloads import workload_blocks, workload_specs


def resolve_blocks(bench: str, encoder: str):
    """Full (untruncated) blocks for any workload spec string."""
    return workload_blocks(bench, encoder, scale="full")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Compile a VQA benchmark (see also the 'batch' subcommand).",
    )
    parser.add_argument("--bench",
                        help="workload spec: LiH, chem:LiH, ucc:UCC-10, "
                             "qaoa:Rand-16, ... (see --list-benchmarks)")
    parser.add_argument("--compiler", default="tetris",
                        help="pipeline spec: a compiler name/alias, a variant "
                             "form like tetris:no-bridge or tetris:w=0.1, or "
                             "a custom pass list (see --list-compilers)")
    parser.add_argument("--device", default="ithaca",
                        help="device spec: ithaca, grid:8x8, heavy-hex:5, "
                             "linear:72, ring:32, ... (see --list-devices)")
    parser.add_argument("--encoder", default="JW", choices=["JW", "BK"])
    parser.add_argument("--blocks", type=int, default=0,
                        help="truncate to the first N blocks (0 = all)")
    parser.add_argument("--swap-weight", type=float, default=None)
    parser.add_argument("--lookahead", type=int, default=None)
    parser.add_argument("--opt-level", type=int, default=3, choices=[0, 1, 3])
    parser.add_argument("--calibration-seed", type=int, default=None,
                        metavar="N",
                        help="compile against the device's seeded synthetic "
                             "calibration and report estimated_fidelity "
                             "(noise-aware pipelines default to seed 0)")
    parser.add_argument("--profile-passes", action="store_true",
                        help="print the per-pass profile (wall time and "
                             "CNOT/1Q/depth deltas) after the metrics")
    parser.add_argument("--parametric", action="store_true",
                        help="compile the Pauli structure once against "
                             "symbolic theta[i] angles, print the template "
                             "summary, and time one angle rebind")
    parser.add_argument("--qasm", default="", help="write OpenQASM to this path")
    parser.add_argument("--list-benchmarks", action="store_true",
                        help="print every workload provider + instance and exit")
    parser.add_argument("--list-compilers", action="store_true",
                        help="print every compiler registry entry and exit")
    parser.add_argument("--list-pipelines", action="store_true",
                        help="print the PIPELINES registry with its spec "
                             "grammar, variants, and pass vocabulary, then exit")
    parser.add_argument("--list-devices", action="store_true",
                        help="print every device family + grammar and exit")
    return parser


def print_benchmarks() -> None:
    for provider, grammar, instances in workload_specs():
        print(f"{provider}: {grammar}")
        for name in instances:
            print(f"  {provider}:{name}")


def print_compilers() -> None:
    print("compiler pipelines (spec: <name>[:<variant>,...], or a "
          "comma-separated pass list; single mode also accepts a "
          "+o<level> suffix — batch jobs use --opt-level):")
    for entry in PIPELINES.entries():
        aliases = f" (aliases: {', '.join(entry.aliases)})" if entry.aliases else ""
        print(f"  {entry.grammar}{aliases}")
        print(f"      passes: {entry.description}")


def print_devices() -> None:
    print("device families (spec: <family>[:<params>]):")
    for entry in DEVICE_FAMILIES.entries():
        aliases = f" (aliases: {', '.join(entry.aliases)})" if entry.aliases else ""
        print(f"  {entry.grammar}{aliases}")
        print(f"      {entry.description}")


def print_pipelines() -> None:
    """The full PIPELINES registry: grammar, variants, and pass vocabulary."""
    print("pipeline spec grammar:")
    print("  <pipeline>[:<variant>|<param>=<value>,...][+o<level>]   "
          "(levels: 0, 1, 3)")
    print("  <pass>,<pass>,...   (custom pass list; cleanup tail appended)")
    print()
    print("registered pipelines:")
    for entry in PIPELINES.entries():
        aliases = f" (aliases: {', '.join(entry.aliases)})" if entry.aliases else ""
        print(f"  {entry.grammar}{aliases}")
        print(f"      passes: {entry.description}")
        definition = PIPELINES.get(entry.name)
        for variant, params in sorted(definition.variants.items()):
            overrides = ", ".join(f"{k}={v}" for k, v in sorted(params.items()))
            print(f"      variant {variant}: {overrides}")
        for short, full in sorted(definition.param_aliases.items()):
            print(f"      param alias {short} -> {full}")
    print()
    print("registered passes (for custom lists):")
    for entry in PASSES.entries():
        print(f"  {entry.name}: {entry.description}")


def _single_compiler_params(args) -> dict:
    """Explicitly-set tetris tuning flags (None = builder/variant default)."""
    base, _level = split_opt_suffix(args.compiler)
    name, _ = resolve_compiler_spec(base)
    params = {}
    if name == "tetris":
        if args.swap_weight is not None:
            params["swap_weight"] = args.swap_weight
        if args.lookahead is not None:
            params["lookahead"] = args.lookahead
    return params


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "cache":
        return cache_main(argv[1:])
    if argv and argv[0] == "serve":
        # The daemon owns its whole lifecycle (signals, shutdown,
        # tracing) — dispatch before the env_trace session below.
        from .serve.cli import serve_main

        return serve_main(argv[1:])
    # REPRO_TRACE traces any plain invocation without changing its args;
    # `repro trace` manages its own session, so this is a no-op there.
    with obs.env_trace() as trace_path:
        if trace_path is not None:
            print(f"tracing to {trace_path} (REPRO_TRACE)")
        return _dispatch(argv)


def _dispatch(argv) -> int:
    if argv and argv[0] == "batch":
        return batch_main(argv[1:])
    if argv and argv[0] == "compile":
        return compile_main(argv[1:])
    if argv and argv[0] == "report":
        from .report.cli import report_main

        return report_main(argv[1:])
    return single_main(argv)


def compile_main(argv) -> int:
    """``repro compile <bench> [--pipeline SPEC] [...]`` — sugar over
    single mode: the first positional is the workload and ``--pipeline``
    is an alias for ``--compiler``, so fidelity-ranked compiles read
    naturally::

        repro compile chem:LiH --device heavy-hex:ibm-65 \\
            --pipeline tetris:noise-aware+select=20
    """
    out = []
    bench = None
    position = 0
    while position < len(argv):
        token = argv[position]
        if token == "--pipeline" and position + 1 < len(argv):
            out.extend(["--compiler", argv[position + 1]])
            position += 2
        elif token.startswith("--pipeline="):
            out.append("--compiler=" + token[len("--pipeline="):])
            position += 1
        elif not token.startswith("-") and bench is None:
            bench = token
            position += 1
        else:
            out.append(token)
            position += 1
    if bench is not None:
        out = ["--bench", bench] + out
    return single_main(out)


def single_main(argv) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_benchmarks:
        print_benchmarks()
        return 0
    if args.list_compilers:
        print_compilers()
        return 0
    if args.list_pipelines:
        print_pipelines()
        return 0
    if args.list_devices:
        print_devices()
        return 0
    if not args.bench:
        parser.error("--bench is required (or use --list-benchmarks)")
    try:
        canonical_device_spec(args.device)
        base_spec, _suffix = split_opt_suffix(args.compiler)
        _, spec_params = resolve_compiler_spec(base_spec)
        blocks = resolve_blocks(args.bench, args.encoder)
        if args.blocks > 0:
            blocks = blocks[: args.blocks]
        coupling = resolve_device(args.device, blocks[0].num_qubits)
        calibration = None
        seed = args.calibration_seed
        if seed is None and (
            spec_params.get("noise_aware") or spec_params.get("select")
        ):
            seed = 0  # noise-aware pipelines imply the seed-0 snapshot
        if seed is not None:
            from .hardware.calibration import resolve_calibration

            calibration = resolve_calibration(
                args.device, seed, blocks[0].num_qubits
            )
        template = None
        if args.parametric:
            from .circuit.template import CompiledTemplate
            from .service.templates import parametrize_blocks

            blocks, parameters, defaults = parametrize_blocks(blocks)
        run = run_pipeline(
            args.compiler,
            blocks,
            coupling,
            optimization_level=args.opt_level,
            params=_single_compiler_params(args),
            profile=args.profile_passes,
            calibration=calibration,
        )
        if args.parametric:
            template = CompiledTemplate(
                run.result.circuit,
                parameters=parameters,
                default_angles=defaults,
            )
    except (RegistryError, PipelineError, KeyError) as exc:
        parser.error(str(exc))
    metrics = run.metrics()
    row = {
        "bench": args.bench,
        "compiler": run.result.compiler_name,
        "device": coupling.name,
        **metrics.as_row(),
    }
    if calibration is not None:
        from .sim.noise import calibrated_fidelity

        row["estimated_fidelity"] = (
            f"{calibrated_fidelity(run.result.circuit, calibration):.6g}"
        )
    print(format_table([row]))
    if args.profile_passes:
        print()
        print(format_table(run.profile.rows()))
        totals = run.profile.totals()
        print(f"pass deltas reconcile: cnot={totals['cnot']} "
              f"oneq={totals['one_qubit']} depth={totals['depth']} "
              f"(metrics: {metrics.cnot_gates}/{metrics.one_qubit_gates}"
              f"/{metrics.depth})")
    if template is not None:
        bind_start = time.perf_counter()
        bound = template.bind()
        bind_seconds = time.perf_counter() - bind_start
        print()
        print(f"template: {template.num_parameters} parameters, "
              f"{template.num_slots} angle slots, "
              f"structure {template.structure_hash()[:12]}")
        print(f"bind(defaults): {len(bound.gates)} gates in "
              f"{bind_seconds * 1e3:.3f} ms "
              f"(compile was {metrics.compile_seconds:.3f} s)")
    if args.qasm:
        # Parametric circuits carry symbolic angles; QASM needs numbers,
        # so dump the default-angle binding.
        circuit = template.bind() if template is not None else run.result.circuit
        with open(args.qasm, "w") as handle:
            handle.write(to_qasm(circuit))
        print(f"wrote {args.qasm}")
    return 0


# ---------------------------------------------------------------------------
# batch subcommand
# ---------------------------------------------------------------------------

def build_batch_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli batch",
        description="Compile a job matrix through the parallel service.",
    )
    parser.add_argument("--matrix", default="",
                        help="JSON file: a list of job specs, or {\"jobs\": [...]}")
    parser.add_argument("--bench", default="",
                        help="comma-separated workload specs (LiH, chem:LiH, ...)")
    parser.add_argument("--compiler", default="tetris",
                        help="comma-separated compiler names")
    parser.add_argument("--device", default="ithaca",
                        help="comma-separated device specs (ithaca, grid:4x4, ...)")
    parser.add_argument("--encoder", default="JW",
                        help="comma-separated encoders (JW,BK)")
    parser.add_argument("--scale", default="small", choices=SCALES)
    parser.add_argument("--blocks", type=int, default=0,
                        help="truncate every workload to the first N blocks")
    parser.add_argument("--opt-level", type=int, default=3, choices=[0, 1, 3])
    parser.add_argument("--calibration-seed", type=int, default=None,
                        metavar="N",
                        help="compile every cell against the device's seeded "
                             "synthetic calibration; rows gain "
                             "estimated_fidelity")
    parser.add_argument("--jobs", "-j", type=int, default=None,
                        help="worker processes (default: $REPRO_JOBS or 1)")
    parser.add_argument("--jsonl", default="", help="write JSONL results here")
    parser.add_argument("--csv", default="", help="write CSV results here")
    parser.add_argument("--profile-passes", action="store_true",
                        help="attach per-pass profiles: JSONL rows gain a "
                             "'profile' object, CSV rows gain pass_* columns "
                             "(unprofiled cache entries are recomputed)")
    parser.add_argument("--cache-dir", default="",
                        help=f"cache root (default: ${CACHE_DIR_ENV} or ~/.cache/repro)")
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the result cache entirely")
    parser.add_argument("--clear-cache", action="store_true",
                        help="clear the cache before running")
    parser.add_argument("--quiet", "-q", action="store_true",
                        help="suppress per-cell progress lines")
    return parser


def load_matrix(path: str) -> list:
    with open(path) as handle:
        payload = json.load(handle)
    if isinstance(payload, dict):
        payload = payload.get("jobs", [])
    if not isinstance(payload, list):
        raise ValueError("matrix file must be a JSON list or {\"jobs\": [...]}")
    return [CompileJob.from_dict(spec) for spec in payload]


def build_grid(args) -> list:
    """Cross product of the comma-separated flags, deduped by content."""
    return grid_jobs(
        [b for b in args.bench.split(",") if b],
        compilers=[c for c in args.compiler.split(",") if c],
        devices=[d for d in args.device.split(",") if d],
        encoders=[e for e in args.encoder.split(",") if e],
        scale=args.scale,
        blocks=args.blocks,
        optimization_level=args.opt_level,
        calibration=args.calibration_seed,
    )


def batch_main(argv=None) -> int:
    parser = build_batch_parser()
    args = parser.parse_args(argv)
    try:
        if args.matrix:
            jobs = load_matrix(args.matrix)
        elif args.bench:
            jobs = build_grid(args)
        else:
            parser.error("provide --matrix FILE or --bench NAMES")
    except (ValueError, OSError) as exc:
        parser.error(str(exc))
    if not jobs:
        parser.error("empty job matrix")

    if args.clear_cache:
        # Clearing is honored even when this run itself won't use the cache.
        scratch = ResultCache(args.cache_dir or None)
        removed = scratch.clear()
        print(f"cleared {removed} cache entries from {scratch.root}")
    cache = None
    if not args.no_cache and cache_enabled():
        cache = ResultCache(args.cache_dir or None)

    sinks = []
    if args.jsonl:
        sinks.append(JsonlSink(args.jsonl))
    if args.csv:
        sinks.append(CsvSink(args.csv, include_profile=args.profile_passes))

    workers = worker_count(args.jobs)
    total = len(jobs)
    print(f"batch: {total} jobs, {workers} worker(s), "
          f"cache={'off' if cache is None else cache.root}")
    start = time.perf_counter()
    failures = 0
    try:
        for done, result in enumerate(
            execute_jobs(jobs, max_workers=args.jobs, cache=cache,
                         use_cache=cache is not None,
                         profile=args.profile_passes),
            start=1,
        ):
            for sink in sinks:
                sink.write(result)
            if result.error is not None:
                failures += 1
                print(f"[{done}/{total}] {result.job.label()} "
                      f"ERROR: {result.error}")
            elif not args.quiet:
                tag = " (cached)" if result.cached else ""
                print(f"[{done}/{total}] {result.job.label()} "
                      f"cnot={result.metrics.cnot_gates} "
                      f"depth={result.metrics.depth} "
                      f"{result.metrics.compile_seconds:.2f}s{tag}")
    finally:
        for sink in sinks:
            sink.close()
    elapsed = time.perf_counter() - start
    summary = f"done: {total} jobs in {elapsed:.1f}s"
    if cache is not None:
        summary += f" ({cache.stats.summary()})"
    if failures:
        summary += f", {failures} FAILED"
    print(summary)
    for sink in sinks:
        print(f"wrote {sink.path} ({sink.count} rows)")
    return 1 if failures else 0


# ---------------------------------------------------------------------------
# trace subcommand
# ---------------------------------------------------------------------------

def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli trace",
        description="Run a single/batch compilation inside a tracing "
                    "session and export the trace (see repro.obs). All "
                    "flags after the mode are forwarded to that mode, so "
                    "any 'repro' or 'repro batch' invocation can be traced "
                    "by prefixing it with 'trace single' / 'trace batch'.",
    )
    parser.add_argument("mode", choices=["single", "batch"],
                        help="which CLI mode to run under the tracer")
    parser.add_argument("--out", default="trace.json",
                        help="Chrome/Perfetto trace output path "
                             "(default: trace.json)")
    parser.add_argument("--span-log", default="",
                        help="also write a JSONL span log to this path")
    parser.add_argument("--no-summary", action="store_true",
                        help="suppress the terminal span-summary tree")
    parser.add_argument("--top", type=int, default=0, metavar="N",
                        help="also print the top-N span names by total "
                             "self-time (a flat hot-spot leaderboard)")
    return parser


def trace_main(argv=None) -> int:
    parser = build_trace_parser()
    args, rest = parser.parse_known_args(argv)
    with obs.trace(out=args.out, span_log=args.span_log or None) as tracer:
        with obs.span(f"cli:{args.mode}", "cli"):
            try:
                code = (
                    single_main(rest) if args.mode == "single"
                    else batch_main(rest)
                )
            except SystemExit as exc:  # argparse errors inside the session
                code = int(exc.code or 0)
    if not args.no_summary:
        print()
        print(obs.summary_tree(tracer.spans, main_pid=tracer.pid))
    if args.top > 0:
        print()
        print(obs.self_time_leaderboard(tracer.spans, top=args.top))
    print(f"wrote {args.out} ({len(tracer.spans)} spans; load in "
          f"chrome://tracing or ui.perfetto.dev)")
    if args.span_log:
        print(f"wrote {args.span_log}")
    return code


# ---------------------------------------------------------------------------
# cache subcommand
# ---------------------------------------------------------------------------

def build_cache_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli cache",
        description="Inspect and maintain the on-disk result cache.",
    )
    parser.add_argument("action", choices=["stats", "clear", "trim"])
    parser.add_argument("--cache-dir", default="",
                        help=f"cache root (default: ${CACHE_DIR_ENV} "
                             f"or ~/.cache/repro)")
    parser.add_argument("--max", type=int, default=1000,
                        help="trim: keep at most this many entries "
                             "(oldest evicted first; default 1000)")
    parser.add_argument("--json", action="store_true",
                        help="stats: machine-readable output (same shape "
                             "as the serve daemon's /stats disk_cache "
                             "section)")
    return parser


def cache_stats_payload(cache: ResultCache) -> dict:
    """Machine-readable cache stats — the serve daemon's ``/stats``
    reports its disk cache in this same shape (root/stats/disk), so
    dashboards can parse both identically."""
    return {
        "root": cache.root,
        "enabled": cache_enabled(),
        "stats": cache.stats.as_dict(),
        "disk": cache.disk_stats(),
    }


def cache_main(argv=None) -> int:
    parser = build_cache_parser()
    args = parser.parse_args(argv)
    cache = ResultCache(args.cache_dir or None)
    if args.action == "stats":
        if args.json:
            print(json.dumps(cache_stats_payload(cache), indent=2,
                             sort_keys=True))
            return 0
        disk = cache.disk_stats()
        print(f"cache root: {cache.root}")
        print(f"caching: {'enabled' if cache_enabled() else 'disabled (REPRO_CACHE)'}")
        print(f"entries: {disk['entries']}")
        print(f"size: {disk['bytes']} bytes ({disk['bytes'] / 1e6:.2f} MB)")
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} cache entries from {cache.root}")
        return 0
    removed = cache.trim(args.max)
    print(f"trimmed {removed} cache entries from {cache.root} "
          f"(kept at most {args.max})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
