"""Command-line compilation tool.

Compile any built-in benchmark with any compiler onto any device and print
the metrics (optionally dumping OpenQASM)::

    python -m repro.cli --bench LiH --compiler tetris --device ithaca
    python -m repro.cli --bench Rand-16 --compiler tetris-qaoa --qasm out.qasm
    python -m repro.cli --bench UCC-10 --compiler paulihedral --blocks 50
"""

from __future__ import annotations

import argparse
import sys

from .analysis import compile_and_measure, format_table
from .chem import benchmark_blocks, encoder_by_name
from .circuit import to_qasm
from .compiler import (
    MaxCancelCompiler,
    PaulihedralCompiler,
    PCoastLikeCompiler,
    TetrisCompiler,
    TetrisQAOACompiler,
    TketLikeCompiler,
    TwoQANLikeCompiler,
)
from .hardware import (
    fully_connected,
    google_sycamore_64,
    ibm_ithaca_65,
    linear,
)
from .qaoa import benchmark_graph, maxcut_blocks

COMPILERS = {
    "tetris": lambda args: TetrisCompiler(
        swap_weight=args.swap_weight, lookahead=args.lookahead
    ),
    "paulihedral": lambda args: PaulihedralCompiler(),
    "max-cancel": lambda args: MaxCancelCompiler(),
    "tket-like": lambda args: TketLikeCompiler(),
    "pcoast-like": lambda args: PCoastLikeCompiler(),
    "2qan-like": lambda args: TwoQANLikeCompiler(include_wrappers=False),
    "tetris-qaoa": lambda args: TetrisQAOACompiler(include_wrappers=False),
}


def resolve_device(name: str, num_logical: int):
    if name == "ithaca":
        return ibm_ithaca_65()
    if name == "sycamore":
        return google_sycamore_64()
    if name == "linear":
        return linear(max(num_logical + 2, num_logical))
    if name == "full":
        return fully_connected(num_logical)
    raise ValueError(f"unknown device {name!r}")


def resolve_blocks(bench: str, encoder: str):
    if bench.lower().startswith(("rand", "reg")):
        return maxcut_blocks(benchmark_graph(bench))
    return benchmark_blocks(bench, encoder_by_name(encoder))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="Compile a VQA benchmark."
    )
    parser.add_argument("--bench", required=True,
                        help="LiH/BeH2/.../UCC-10/Rand-16/REG3-20")
    parser.add_argument("--compiler", default="tetris", choices=sorted(COMPILERS))
    parser.add_argument("--device", default="ithaca",
                        choices=["ithaca", "sycamore", "linear", "full"])
    parser.add_argument("--encoder", default="JW", choices=["JW", "BK"])
    parser.add_argument("--blocks", type=int, default=0,
                        help="truncate to the first N blocks (0 = all)")
    parser.add_argument("--swap-weight", type=float, default=3.0)
    parser.add_argument("--lookahead", type=int, default=10)
    parser.add_argument("--opt-level", type=int, default=3, choices=[0, 1, 3])
    parser.add_argument("--qasm", default="", help="write OpenQASM to this path")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    blocks = resolve_blocks(args.bench, args.encoder)
    if args.blocks > 0:
        blocks = blocks[: args.blocks]
    coupling = resolve_device(args.device, blocks[0].num_qubits)
    compiler = COMPILERS[args.compiler](args)
    record = compile_and_measure(
        compiler, blocks, coupling, optimization_level=args.opt_level
    )
    print(format_table([{
        "bench": args.bench,
        "compiler": record.compiler_name,
        "device": coupling.name,
        **record.metrics.as_row(),
    }]))
    if args.qasm:
        with open(args.qasm, "w") as handle:
            handle.write(to_qasm(record.result.circuit))
        print(f"wrote {args.qasm}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
