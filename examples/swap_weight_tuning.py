"""Explore the Tetris tuning spectrum (paper Sec. IV-B2 / Fig. 20).

Sweeps the SWAP weight ``w`` of the leaf-attachment score on two
architectures and prints the SWAP-count vs logical-CNOT tradeoff, plus the
lookahead-K sensitivity (Fig. 19's ingredient).

Run with::

    python examples/swap_weight_tuning.py
"""

from repro.analysis import compile_and_measure, format_table
from repro.chem import molecule_blocks
from repro.compiler import TetrisCompiler
from repro.hardware import google_sycamore_64, ibm_ithaca_65


def sweep_swap_weight(blocks) -> None:
    rows = []
    for w in (0.1, 1, 3, 10, 100):
        row = {"w": w}
        for label, coupling in (
            ("ithaca", ibm_ithaca_65()),
            ("sycamore", google_sycamore_64()),
        ):
            record = compile_and_measure(TetrisCompiler(swap_weight=w), blocks, coupling)
            row[f"{label}_swaps"] = record.metrics.swap_cnots // 3
            row[f"{label}_logical_cnot"] = (
                record.metrics.cnot_gates
                - record.metrics.swap_cnots
                - record.metrics.bridge_cnots
            )
        rows.append(row)
    print("SWAP-weight sweep (LiH prefix):")
    print(format_table(rows))


def sweep_lookahead(blocks) -> None:
    coupling = ibm_ithaca_65()
    rows = []
    for k in (1, 4, 10, 16):
        record = compile_and_measure(TetrisCompiler(lookahead=k), blocks, coupling)
        rows.append(
            {
                "K": k,
                "cnot": record.metrics.cnot_gates,
                "depth": record.metrics.depth,
                "compile_s": round(record.result.compile_seconds, 2),
            }
        )
    print("\nLookahead-K sweep:")
    print(format_table(rows))


def main() -> None:
    blocks = molecule_blocks("LiH")[:60]
    sweep_swap_weight(blocks)
    sweep_lookahead(blocks)


if __name__ == "__main__":
    main()
