"""Compose pass pipelines and read per-pass profiles.

Three ways to drive the pipeline layer:

1. spec strings through :func:`repro.pipeline.run_pipeline` — named
   pipelines, variants (``tetris:no-bridge``), cleanup levels (``+o1``);
2. a hand-built :class:`repro.pipeline.PassManager` mixing stages from
   different compilers;
3. the batch service with ``profile_passes=True`` — profiles attached
   to cached, CSV-flattenable :class:`~repro.service.jobs.JobResult`\\ s.

Each profiled run yields a :class:`~repro.pipeline.PipelineProfile`:
per-pass wall time and CNOT/1Q/depth deltas that telescope exactly to
the end-to-end metrics.

Run with::

    python examples/pipeline_profiling.py
"""

import repro
from repro.analysis import format_table
from repro.chem import molecule_blocks
from repro.hardware import resolve_device
from repro.pipeline import PassManager, run_pipeline
from repro.pipeline.passes import (
    CancelGatesPass,
    ChainSynthesisPass,
    DecomposeSwapsPass,
    InteractionLayoutPass,
    SwapRoutePass,
)


def profile_spec_variants() -> None:
    """Where does the time (and the CNOT win) come from, per variant?"""
    blocks = molecule_blocks("LiH")[:24]
    coupling = resolve_device("grid:4x4", blocks[0].num_qubits)
    for spec in ("tetris", "tetris:no-bridge+o1", "paulihedral"):
        run = run_pipeline(spec, blocks, coupling, profile=True)
        metrics = run.metrics()
        print(f"\n{spec}: cnot={metrics.cnot_gates} depth={metrics.depth} "
              f"({run.profile.seconds:.3f}s total)")
        print(format_table(run.profile.rows()))
        assert run.profile.reconciles(
            metrics.cnot_gates, metrics.one_qubit_gates, metrics.depth
        )


def hand_built_manager() -> None:
    """Mix and match stages: T|Ket>-style synthesis, no logical cleanup,
    straight to routing — then cancellation only (an O1-style tail)."""
    blocks = molecule_blocks("LiH")[:24]
    coupling = resolve_device("grid:4x4", blocks[0].num_qubits)
    manager = PassManager(
        [
            ChainSynthesisPass(),
            InteractionLayoutPass(),
            SwapRoutePass(),
            DecomposeSwapsPass(),
            CancelGatesPass(),
        ],
        name="chain-routed-o1",
    )
    run = manager.run(blocks, coupling, profile=True)
    cancel = next(p for p in run.profile.passes if p.name == "cancel")
    print(f"\n{manager.name}: cnot={run.metrics().cnot_gates}, "
          f"cancellation removed {-cancel.cnot_delta} CNOTs "
          f"in {cancel.seconds:.3f}s")


def profile_through_the_service() -> None:
    """The same profiles, attached to batch-service results."""
    result = repro.compile(
        bench="chem:LiH", compiler="tetris", device="grid:4x4",
        scale="smoke", blocks=8, profile_passes=True,
    )
    row = result.row(include_profile=True)
    print(f"\nservice row pass_names:      {row['pass_names']}")
    print(f"service row pass_cnot_delta: {row['pass_cnot_delta']} "
          f"(sums to cnot={row['cnot']})")


if __name__ == "__main__":
    profile_spec_variants()
    hand_built_manager()
    profile_through_the_service()
