"""Quickstart: compile a UCCSD ansatz with Tetris and inspect the result.

Run with::

    python examples/quickstart.py
"""

from repro.analysis import compile_and_measure, format_table
from repro.chem import molecule_blocks
from repro.circuit import to_qasm
from repro.compiler import PaulihedralCompiler, TetrisCompiler, lower_blocks
from repro.hardware import ibm_ithaca_65


def main() -> None:
    # 1. Build the workload: LiH's UCCSD ansatz under Jordan-Wigner.
    blocks = molecule_blocks("LiH")
    print(f"LiH: {len(blocks)} excitation blocks, "
          f"{sum(len(b) for b in blocks)} Pauli strings\n")

    # 2. Peek at the Tetris-IR of one block (Fig. 6(b) style).
    ir = lower_blocks(blocks[40:41])[0]
    print("Tetris-IR of one doubles block:")
    print(ir.render())
    print(f"root qubits: {list(ir.root_qubits)}, leaf qubits: {list(ir.leaf_qubits)}\n")

    # 3. Compile for the 65-qubit IBM heavy-hex backend and compare against
    #    the Paulihedral baseline (both post-O3 cleanup).
    coupling = ibm_ithaca_65()
    rows = []
    for compiler in (PaulihedralCompiler(), TetrisCompiler()):
        record = compile_and_measure(compiler, blocks, coupling)
        rows.append(
            {
                "compiler": record.compiler_name,
                "cnot": record.metrics.cnot_gates,
                "depth": record.metrics.depth,
                "duration_dt": record.metrics.duration,
                "swap_cnots": record.metrics.swap_cnots,
                "cancel_ratio": round(record.metrics.cancel_ratio, 3),
            }
        )
    print(format_table(rows))

    # 4. Export the head of the compiled circuit as OpenQASM.
    record = compile_and_measure(TetrisCompiler(), blocks[:2], coupling)
    qasm = to_qasm(record.result.circuit)
    print("\nFirst lines of the compiled circuit (OpenQASM 2.0):")
    print("\n".join(qasm.splitlines()[:12]))


if __name__ == "__main__":
    main()
