"""Template compilation: one compile, a thousand cheap binds.

A VQE (or QAOA) optimizer calls the compiler in a loop — same Pauli
structure every iteration, different angles.  The compiled circuit's
*structure* never depends on the angles (the paper's synthesis places
each block's rotation in a fixed slot), so recompiling per iteration
is pure waste.  This walkthrough shows the compile-once/bind-many
path at each API level:

1. ``repro.compile(..., parametric=True)`` — the result carries a
   reusable :class:`~repro.circuit.template.CompiledTemplate`;
2. an optimizer-style loop: K angle vectors through ``bind(theta)``,
   timed against K fresh recompiles (expect a >=20x loop speedup);
3. the differential check the test suite pins: ``bind(theta)`` equals
   a baked-angle recompile gate for gate;
4. the same loop against the serve daemon's ``/bind`` endpoint, where
   the template stays resident server-side.

Run from the repo root::

    PYTHONPATH=src python examples/vqe_loop.py
"""

import time

import numpy as np

import repro
from repro.serve import BackgroundServer

BENCH, DEVICE, SCALE = "chem:LiH", "linear", "smoke"
ITERATIONS = 100

# --- 1. compile the structure once, against symbolic theta[i] ----------

result = repro.compile(bench=BENCH, device=DEVICE, scale=SCALE,
                       parametric=True, use_cache=False)
template = result.template
print(f"parametric compile of {result.job.label()}:")
print(f"  {template.num_parameters} parameters, {template.num_slots} "
      f"angle slots, {len(template.gates)} gates")
print(f"  compile took {result.metrics.compile_seconds:.3f}s")

# --- 2. the optimizer loop: K binds vs K recompiles --------------------

rng = np.random.default_rng(11)
thetas = rng.uniform(-2.0, 2.0, size=(ITERATIONS, template.num_parameters))

start = time.perf_counter()
for theta in thetas:
    circuit = template.bind(theta)       # <- the per-iteration cost
bind_loop_s = time.perf_counter() - start

start = time.perf_counter()
repro.compile(bench=BENCH, device=DEVICE, scale=SCALE, use_cache=False)
recompile_s = time.perf_counter() - start

loop_as_recompiles = recompile_s * ITERATIONS
speedup = loop_as_recompiles / (result.metrics.compile_seconds + bind_loop_s)
print(f"\n{ITERATIONS}-iteration loop:")
print(f"  as recompiles:        {loop_as_recompiles:8.2f}s "
      f"({recompile_s * 1e3:.1f} ms/iter)")
print(f"  as 1 compile + binds: "
      f"{result.metrics.compile_seconds + bind_loop_s:8.2f}s "
      f"({bind_loop_s / ITERATIONS * 1e3:.2f} ms/iter)")
print(f"  loop speedup: {speedup:.0f}x")

# --- 3. the equivalence the tests pin ----------------------------------
# Binding the workload's own angles reproduces the baked compile
# exactly (tests/test_templates.py checks this for every pipeline,
# gate for gate and as statevectors).

baked = repro.compile(bench=BENCH, device=DEVICE, scale=SCALE,
                      use_cache=False)
bound = template.bind()  # default angles = the workload's baked ones
print(f"\nbind(defaults) vs baked compile: "
      f"{len(bound.gates)} vs {baked.metrics.total_gates} gates, "
      f"cnots {sum(1 for g in bound.gates if g.name == 'cx')} vs "
      f"{baked.metrics.cnot_gates}")

# --- 4. the same shape over the wire: POST /bind -----------------------
# The daemon pins the template in an LRU; after the first request the
# worker pool never runs again (`jobs_executed` stays at 1).

with BackgroundServer(workers=0, use_disk_cache=False) as daemon:
    client = daemon.client()
    first = client.bind(bench=BENCH, device=DEVICE, scale=SCALE)
    served = [
        client.bind(bench=BENCH, device=DEVICE, scale=SCALE,
                    theta=thetas[i]).served
        for i in range(5)
    ]
    stats = client.stats()
    print(f"\nserve /bind: first={first.served!r}, then {served}")
    print(f"  jobs_executed={stats['server']['requests']['jobs_executed']}, "
          f"template_binds={stats['templates']['binds']}")
