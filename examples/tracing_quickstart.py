"""Tracing quickstart: spans, metrics, and Perfetto export (repro.obs).

A runnable tour of the observability layer:

1. trace one in-process compile and print the summary tree;
2. trace a 2-worker batch and show that worker spans merge into one
   coherent cross-process trace;
3. read the always-on metrics registry (cache hits, jobs executed,
   per-pass wall-clock);
4. export a Chrome/Perfetto ``trace.json`` and a JSONL span log;
5. add a custom span around your own code.

Run from the repo root::

    PYTHONPATH=src python examples/tracing_quickstart.py

Then load ``example-trace.json`` in chrome://tracing or
https://ui.perfetto.dev.  The same sessions are available from the
command line as ``repro trace single ...`` / ``repro trace batch ...``
or via ``REPRO_TRACE=trace.json repro ...``.
"""

import os
import tempfile

from repro import obs
from repro.obs.metrics import METRICS
from repro.service import CompileJob, ResultCache, run_batch, run_job

OUT = "example-trace.json"
SPAN_LOG = "example-spans.jsonl"


def main() -> None:
    # ------------------------------------------------------------------
    # 1. One traced compile.  obs.trace() installs a tracer for the
    #    duration of the block; every instrumented layer (workload
    #    build, pipeline passes, cache) records spans into it.
    # ------------------------------------------------------------------
    job = CompileJob(bench="chem:LiH", compiler="tetris", device="grid:4x4",
                     scale="smoke", blocks=4)
    with obs.trace() as tracer:
        result = run_job(job, profile=True)
    print(f"single compile: {len(tracer.spans)} spans, "
          f"cnot={result.metrics.cnot_gates}")
    print()
    print(obs.summary_tree(tracer.spans, main_pid=tracer.pid))
    print()

    # Pass spans carry the profiler's own measurement of the same
    # interval, so the two clocks can be reconciled span by span.
    for span in tracer.spans:
        if span.name.startswith("pass:"):
            profiled = span.attrs["profile_seconds"]
            print(f"  {span.name:<28} span {span.duration:.4f}s "
                  f"vs profiled {profiled:.4f}s "
                  f"(cnot delta {span.attrs['cnot_delta']:+d})")
    print()

    # ------------------------------------------------------------------
    # 2. A traced 2-worker batch.  Workers record their own spans and
    #    ship them back with each result; the parent merges them, so
    #    the session holds one trace spanning every process.
    # ------------------------------------------------------------------
    jobs = [
        CompileJob(bench=bench, compiler=compiler, device="grid:4x4",
                   scale="smoke", blocks=4)
        for bench in ("chem:LiH", "chem:BeH2")
        for compiler in ("tetris", "paulihedral")
    ]
    with tempfile.TemporaryDirectory() as cache_dir:
        cache = ResultCache(cache_dir)
        with obs.trace(out=OUT, span_log=SPAN_LOG) as tracer:
            with obs.span("example:batch", "example", jobs=len(jobs)):
                results = run_batch(jobs, max_workers=2, cache=cache)
        pids = sorted({span.pid for span in tracer.spans})
        print(f"batch: {len(results)} results in submission order, "
              f"{len(tracer.spans)} spans from {len(pids)} processes {pids}")
        worker_names = sorted({
            span.name for span in tracer.spans if span.pid != os.getpid()
        })
        print(f"worker-side spans: {', '.join(worker_names)}")
        print(f"cache: {cache.stats.summary()}")
    print()

    # ------------------------------------------------------------------
    # 3. Metrics are always on — no session required.  Counters add
    #    across processes (workers drain per payload, the parent
    #    merges), histograms pool.
    # ------------------------------------------------------------------
    snapshot = METRICS.snapshot()
    print("metrics snapshot (selected):")
    for name in ("jobs.executed", "cache.misses", "cache.puts",
                 "workload.builds"):
        if name in snapshot["counters"]:
            print(f"  {name} = {snapshot['counters'][name]}")
    passes = snapshot["histograms"].get("pipeline.pass_seconds")
    if passes:
        print(f"  pipeline.pass_seconds: n={passes['count']} "
              f"total={passes['total']:.4f}s")
    print()

    # ------------------------------------------------------------------
    # 4. The exports were written by the session above.
    # ------------------------------------------------------------------
    print(f"wrote {OUT} ({os.path.getsize(OUT)} bytes) — load it in "
          f"chrome://tracing or ui.perfetto.dev")
    print(f"wrote {SPAN_LOG} (one canonical JSON object per span)")
    print()

    # ------------------------------------------------------------------
    # 5. Custom spans cost nothing when tracing is off: obs.span()
    #    returns a shared no-op object outside a session, so it is safe
    #    to leave in library code permanently.
    # ------------------------------------------------------------------
    assert obs.span("outside-a-session") is obs.NULL_SPAN
    print("outside a session obs.span() is a shared no-op "
          "(zero overhead — gated by benchmarks/bench_obs.py)")


if __name__ == "__main__":
    main()
