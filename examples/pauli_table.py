"""The bit-packed Pauli layer: PauliTable bitplanes and batch kernels.

Walkthrough of the symplectic backend underneath every compiler in this
repo:

1. how a term list becomes two ``uint64`` bitplanes;
2. ``PauliString`` as a zero-copy view over one row;
3. the batch kernels (commutation / Eq. (1) similarity / Hamming
   matrices, row products with phases) the schedulers consume;
4. the block-level similarity matrix that replaced per-pair Eq. (1)
   calls in the Tetris/Paulihedral ordering stages.

Run from the repo root:  PYTHONPATH=src python examples/pauli_table.py
"""

import numpy as np

from repro.chem import molecule_blocks
from repro.pauli import (
    PauliBlock,
    PauliString,
    PauliTable,
    block_similarity,
    block_similarity_matrix,
)

print("=" * 70)
print("1. Bitplanes: a term list packed into uint64 words")
print("=" * 70)

table = PauliTable.from_labels(["XYZZZ", "XXZZZ", "YXZZZ"])
print(f"{table!r}")
print(f"x bitplane (hex): {[hex(int(w)) for w in table.x[:, 0]]}")
print(f"z bitplane (hex): {[hex(int(w)) for w in table.z[:, 0]]}")
print(f"row weights (active lengths): {table.weights().tolist()}")
print(f"block support: {table.support_qubits()}")
print(f"leaf-tree set (common non-identity ops): {table.common_qubits()}")

print()
print("=" * 70)
print("2. PauliString is a zero-copy view over one row")
print("=" * 70)

row = table.row(0)
print(f"row(0) -> {row!r}, weight {row.weight}, support {row.support}")
print(f"shares the table's memory: {row.xz_words()[0].base is not None}")
phase, product = row.product(table.row(2))
print(f"row0 @ row2 = {phase} * {product}")

print()
print("=" * 70)
print("3. Batch kernels: one popcount call per matrix, not O(k^2) loops")
print("=" * 70)

print("commutation matrix (popcount parity of x_a&z_b ^ z_a&x_b):")
print(table.commutation_matrix().astype(int))
print("match matrix (Eq. (1) numerators from AND + popcount):")
print(table.match_matrix())
print("Hamming matrix (the Gray-ordering metric inside blocks):")
print(table.hamming_matrix())

print()
print("=" * 70)
print("4. Block similarity on a real workload (LiH UCCSD)")
print("=" * 70)

blocks = molecule_blocks("LiH")[:8]
matrix = block_similarity_matrix(blocks)
print(f"{len(blocks)} blocks -> one {matrix.shape} Eq. (1) matrix")
print(np.round(matrix, 3))
a, b = blocks[0], blocks[1]
assert matrix[0, 1] == block_similarity(a, b)
print(f"matrix[0,1] == block_similarity(blocks[0], blocks[1]) "
      f"== {matrix[0, 1]:.3f}")

# The schedulers rank candidates by indexing this matrix; the old code
# recomputed leaf profiles per pair, per scheduling step.
best = int(np.argmax(matrix[0, 1:]) + 1)
print(f"most similar block to block 0: block {best} "
      f"(S = {matrix[0, best]:.3f})")

print()
print("=" * 70)
print("5. Restriction / padding are mask operations")
print("=" * 70)

wide = PauliString("XYZ").padded(8)
print(f"padded:     {wide}")
print(f"restricted: {wide.restricted([0, 2])}")
narrowed = PauliTable.from_labels(["XYZZ", "ZZYX"]).restricted([1, 2])
print(f"table restricted to qubits {{1, 2}}: "
      f"{[str(s) for s in narrowed.to_strings()]}")

print()
print("done — see docs/ARCHITECTURE.md ('The Pauli layer') for the "
      "bitplane layout and kernel inventory.")
