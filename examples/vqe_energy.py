"""End-to-end VQE on a synthetic 4-orbital molecule.

Demonstrates the full pipeline the paper's compiler serves:

1. build a (synthetic) molecular Hamiltonian,
2. build the UCCSD ansatz as Pauli blocks with variational amplitudes,
3. compile the ansatz with Tetris onto a line device,
4. evaluate <H> by simulating the *compiled physical circuit*, and
5. minimize over the amplitudes with scipy.

The optimized energy approaches the exact ground state of the particle
sector the ansatz explores — evidence that the compiled circuits are
faithful.

Run with::

    python examples/vqe_energy.py
"""

import numpy as np
from scipy.optimize import minimize

from repro.chem import (
    JordanWignerEncoder,
    dense_hamiltonian,
    excitation_to_block,
    expectation_value,
    molecular_hamiltonian,
    uccsd_excitations,
)
from repro.circuit.gate import Gate
from repro.compiler import TetrisCompiler
from repro.hardware import linear
from repro.sim import Statevector

NUM_SPATIAL = 2          # 4 spin orbitals -> 4 qubits
NUM_OCCUPIED = 1
NUM_QUBITS = 2 * NUM_SPATIAL
DEVICE = linear(6)       # 6 physical qubits for a 4-qubit problem

#: Hartree-Fock reference: orbital 0 of each spin block occupied (blocked
#: spin-orbital convention -> qubits 0 and NUM_SPATIAL).
HF_OCCUPIED = (0, NUM_SPATIAL)


def ansatz_blocks(amplitudes):
    encoder = JordanWignerEncoder()
    excitations = uccsd_excitations(NUM_SPATIAL, NUM_OCCUPIED)
    return [
        excitation_to_block(excitation, encoder, NUM_QUBITS, float(theta))
        for excitation, theta in zip(excitations, amplitudes)
    ]


def sector_ground_energy(hamiltonian) -> float:
    """Exact minimum within the ansatz's particle/spin sector."""
    matrix = dense_hamiltonian(hamiltonian)
    indices = []
    for basis in range(2**NUM_QUBITS):
        bits = [(basis >> (NUM_QUBITS - 1 - q)) & 1 for q in range(NUM_QUBITS)]
        n_alpha = sum(bits[:NUM_SPATIAL])
        n_beta = sum(bits[NUM_SPATIAL:])
        if n_alpha == NUM_OCCUPIED and n_beta == NUM_OCCUPIED:
            indices.append(basis)
    restricted = matrix[np.ix_(indices, indices)]
    return float(np.linalg.eigvalsh(restricted)[0])


def energy(amplitudes, hamiltonian, compiler) -> float:
    blocks = ansatz_blocks(amplitudes)
    result = compiler.compile_timed(blocks, DEVICE)
    sim = Statevector(DEVICE.num_qubits)
    for orbital in HF_OCCUPIED:
        sim.apply_gate(Gate("x", (result.initial_layout.physical(orbital),)))
    sim.run(result.circuit)
    # Read the logical state back out of the final layout.
    final = [result.final_layout.physical(q) for q in range(NUM_QUBITS)]
    tensor = sim.state.reshape([2] * DEVICE.num_qubits)
    ancilla_axes = [p for p in range(DEVICE.num_qubits) if p not in final]
    ordered = np.moveaxis(tensor, final + ancilla_axes, range(DEVICE.num_qubits))
    logical = np.ascontiguousarray(ordered).reshape(2**NUM_QUBITS, -1)[:, 0]
    return expectation_value(hamiltonian, logical)


def main() -> None:
    hamiltonian = molecular_hamiltonian(NUM_QUBITS, seed=11)
    exact = sector_ground_energy(hamiltonian)
    print(f"Synthetic molecule on {NUM_QUBITS} qubits, "
          f"{len(hamiltonian)} Hamiltonian terms")
    print(f"Exact sector ground-state energy: {exact:.6f}")

    num_parameters = len(uccsd_excitations(NUM_SPATIAL, NUM_OCCUPIED))
    compiler = TetrisCompiler()
    rng = np.random.default_rng(0)
    initial = rng.uniform(-0.1, 0.1, size=num_parameters)

    def objective(theta):
        return energy(theta, hamiltonian, compiler)

    print(f"Initial ansatz energy:            {objective(initial):.6f}")
    outcome = minimize(objective, initial, method="COBYLA",
                       options={"maxiter": 200, "rhobeg": 0.4})
    print(f"VQE optimized energy:             {outcome.fun:.6f}")
    print(f"Gap to exact sector minimum:      {outcome.fun - exact:.2e}")


if __name__ == "__main__":
    main()
