"""Programmatic use of the experiment manifest (`repro.report`).

The report layer that backs ``repro report`` is a plain registry + a
few functions — everything the CLI does is scriptable:

1. list the manifest (every paper table/figure, its claim, its pins);
2. run one experiment store-first and look at its rows;
3. check its pinned metrics the same way ``--check`` does;
4. render a single-experiment markdown report to a string.

Run from the repo root::

    PYTHONPATH=src python examples/report_quickstart.py

Uses smoke-scale grids throughout, so a cold run takes seconds and a
rerun is served from the artifact store.
"""

from repro.experiments.spec import check_pins
from repro.report import (
    EXPERIMENTS,
    ReportStore,
    experiment_ids,
    render_markdown,
    run_experiment,
)

# --- 1. the manifest: every experiment id, claim, and pin count --------

print("manifest:")
for exp_id in experiment_ids():
    spec = EXPERIMENTS.get(exp_id).spec
    print(f"  {exp_id:7s} {spec.kind:6s} pins={len(spec.pins):2d}  {spec.title}")

# --- 2. run one experiment through the artifact store ------------------

entry = EXPERIMENTS.get("table2")  # aliases/case-insensitivity work too
store = ReportStore()  # $REPRO_REPORT_DIR or <cache>/report
outcome = run_experiment(entry, scale="smoke", store=store)

print(f"\ntable2 @ smoke: {len(outcome.rows)} rows, "
      f"{outcome.runtime_seconds:.2f}s "
      f"({'store' if outcome.from_store else 'computed'})")
for row in outcome.rows:
    print(f"  {row['bench']:7s} {row['encoder']}: "
          f"tetris {row['tetris_cnot']} vs ph {row['ph_cnot']} CNOTs "
          f"({row['cnot_impr_%']:+.2f}%, paper {row['paper_cnot_impr_%']}%)")

# --- 3. the drift gate, by hand ----------------------------------------

print("\npinned-metric checks (what `repro report --check` runs):")
for result in check_pins(entry.spec, outcome.rows, scale="smoke"):
    print(f"  {result.describe()}")

# --- 4. render a one-experiment report ---------------------------------

document = render_markdown([outcome], scale="smoke", csv_dir_rel=None)
print("\nsingle-table RESULTS.md (first 12 lines):")
for line in document.splitlines()[:12]:
    print(f"  {line}")
