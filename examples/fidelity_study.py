"""Mirror-circuit fidelity under depolarizing noise (paper Sec. VI-G).

Compiles growing prefixes of the LiH ansatz with Paulihedral and Tetris and
estimates the probability that circuit + inverse returns to |0...0> under
the paper's noise model (CNOT 1e-3, 1Q 1e-4).  Also cross-checks the fast
analytic estimator against the exact stochastic-trajectory simulator on a
small instance.

Run with::

    python examples/fidelity_study.py
"""

from repro.analysis import compile_and_measure, format_table
from repro.chem import molecule_blocks
from repro.compiler import PaulihedralCompiler, TetrisCompiler
from repro.hardware import ibm_ithaca_65, linear
from repro.sim import NoiseModel, estimate_fidelity, trajectory_fidelity


def fidelity_sweep() -> None:
    blocks = molecule_blocks("LiH")
    coupling = ibm_ithaca_65()
    noise = NoiseModel()
    rows = []
    for count in (2, 4, 6, 8, 10):
        subset = blocks[16 : 16 + count]  # doubles blocks (the deep ones)
        row = {"blocks": count}
        for label, compiler in (
            ("ph", PaulihedralCompiler()),
            ("tetris", TetrisCompiler()),
        ):
            record = compile_and_measure(compiler, subset, coupling)
            estimate = estimate_fidelity(
                record.result.circuit, noise, samples=100, seed=1
            )
            row[f"{label}_fidelity"] = round(estimate.point, 4)
            row[f"{label}_cnot"] = record.metrics.cnot_gates
        rows.append(row)
    print("LiH mirror fidelity vs ansatz size (higher is better):")
    print(format_table(rows))


def validate_estimator() -> None:
    """Analytic no-error estimate vs exact trajectories on a tiny circuit."""
    blocks = molecule_blocks("LiH")[16:18]
    # Compile onto a small line so the statevector fits comfortably.
    from repro.chem.uccsd import uccsd_blocks
    from repro.chem import JordanWignerEncoder
    from repro.chem.amplitudes import synthetic_amplitudes

    small = uccsd_blocks(3, 1, JordanWignerEncoder(), synthetic_amplitudes(20))[:2]
    record = compile_and_measure(TetrisCompiler(), small, linear(7))
    noise = NoiseModel(two_qubit_error=5e-3, one_qubit_error=5e-4)
    analytic = estimate_fidelity(record.result.circuit, noise).point
    exact = trajectory_fidelity(record.result.circuit, noise, shots=200, seed=2)
    print(f"\nEstimator validation (6-qubit ansatz, inflated noise):")
    print(f"  analytic no-error probability: {analytic:.4f}")
    print(f"  exact trajectory fidelity:     {exact:.4f}")
    print("  (trajectories sit at or above the analytic bound: error paths "
          "can cancel)")


def main() -> None:
    fidelity_sweep()
    validate_estimator()


if __name__ == "__main__":
    main()
