"""Fidelity-ranked compilation on a calibrated device.

Walks the noise-aware layer end to end:

1. build the seeded synthetic calibration for ``heavy-hex:ibm-65`` and
   peek at what it knows (per-edge 2Q error, readout, noise distance);
2. compile LiH blind vs ``tetris:noise-aware+select=20`` against that
   calibration and compare the analytic ``estimated_fidelity`` each
   job reports;
3. ask ``select_best_subgraph`` directly for the 20 best-connected
   low-error qubits the pipeline restricted itself to;
4. validate the analytic mirror-fidelity estimator against the exact
   stochastic-trajectory simulator on a small instance.

Run with::

    python examples/fidelity_study.py
"""

import repro
from repro.analysis import compile_and_measure
from repro.chem import JordanWignerEncoder
from repro.chem.amplitudes import synthetic_amplitudes
from repro.chem.uccsd import uccsd_blocks
from repro.compiler import TetrisCompiler
from repro.hardware import resolve_calibration, resolve_device
from repro.hardware.calibration import select_best_subgraph
from repro.sim import CalibratedNoiseModel, calibrated_fidelity, trajectory_fidelity

DEVICE = "heavy-hex:ibm-65"


def inspect_calibration() -> None:
    """What a seeded synthetic calibration looks like."""
    cal = resolve_calibration(DEVICE, seed=0)
    errors = sorted(cal.edge_error.items(), key=lambda kv: kv[1])
    best, worst = errors[0], errors[-1]
    print(f"calibration for {DEVICE} (seed 0): "
          f"{cal.num_qubits} qubits, {len(cal.edge_error)} couplers")
    print(f"  best coupler  {best[0]}: 2Q error {best[1]:.2e}")
    print(f"  worst coupler {worst[0]}: 2Q error {worst[1]:.2e}  "
          f"({worst[1] / best[1]:.0f}x spread)")
    print(f"  mean readout error: "
          f"{sum(cal.readout_error) / cal.num_qubits:.3f}")
    a, b = best[0][0], worst[0][1]
    print(f"  noise-cheapest path {a}->{b}: {cal.noise_path(a, b)}")


def blind_vs_aware() -> None:
    """The same workload, with and without the noise-aware passes."""
    print("\nLiH on", DEVICE, "(calibration seed 0):")
    rows = {}
    for label, spec in (
        ("blind", "tetris"),
        ("aware", "tetris:noise-aware+select=20"),
    ):
        result = repro.compile(
            bench="chem:LiH", compiler=spec, device=DEVICE,
            scale="smoke", calibration=0,
        )
        rows[label] = result
        print(f"  {label:5s} {spec:32s} cnot={result.metrics.cnot_gates:5d}  "
              f"estimated_fidelity={result.estimated_fidelity:.6f}")
    gain = rows["aware"].estimated_fidelity / rows["blind"].estimated_fidelity
    print(f"  noise-aware fidelity gain: {gain:.0f}x")


def show_selected_region() -> None:
    """The qubit region the ``+select=20`` suffix confines the layout to."""
    coupling = resolve_device(DEVICE)
    cal = resolve_calibration(DEVICE, seed=0)
    selected = select_best_subgraph(coupling, cal, 20)
    print(f"\nbest 20-qubit region: {sorted(selected)}")
    print(f"  mean 2Q error inside region: {cal.mean_edge_error(selected):.2e}"
          f"  (device-wide: {cal.mean_edge_error():.2e})")


def validate_estimator() -> None:
    """Analytic mirror fidelity vs exact trajectories on a tiny circuit."""
    small = uccsd_blocks(3, 1, JordanWignerEncoder(), synthetic_amplitudes(20))[:2]
    record = compile_and_measure(TetrisCompiler(), small, resolve_device("linear:7"))
    cal = resolve_calibration("linear:7", seed=3)
    # Inflate errors so the Monte-Carlo signal clears sampling noise.
    noise = CalibratedNoiseModel(cal, scale=20.0)
    analytic = calibrated_fidelity(record.result.circuit, cal, scale=20.0)
    exact = trajectory_fidelity(record.result.circuit, noise, shots=300, seed=2)
    print("\nEstimator validation (6-qubit ansatz, 20x inflated errors):")
    print(f"  analytic mirror fidelity:  {analytic:.4f}")
    print(f"  trajectory fidelity:       {exact:.4f}")
    print("  (trajectories sit at or above the analytic bound: error paths "
          "can cancel)")


def main() -> None:
    inspect_calibration()
    blind_vs_aware()
    show_selected_region()
    validate_estimator()


if __name__ == "__main__":
    main()
