"""The serve daemon (`repro.serve`): hot cache, dedup, quotas, /stats.

``repro serve`` keeps a compile service resident — a warm worker pool
behind an in-memory hot cache, the on-disk result cache, and in-flight
request dedup — so repeated and concurrent requests stop paying cold
costs.  This walkthrough runs the whole thing in-process:

1. start a daemon on an ephemeral port (`BackgroundServer`);
2. compile once cold, then watch the identical request come back
   ``hot`` without touching the worker pool;
3. fire concurrent identical requests and see them dedup to one
   execution;
4. stream a mixed batch in submission order;
5. scrape ``/stats`` the way a monitor would, then drain cleanly.

Run from the repo root::

    PYTHONPATH=src python examples/serve_quickstart.py

Against a real daemon (``repro serve --port 8421 --workers 4``) the
client half of this script is unchanged — just
``ReproClient(port=8421)``.
"""

import threading

from repro.serve import BackgroundServer
from repro.service import CompileJob

JOB = dict(bench="LiH", device="linear", scale="smoke", blocks=3)
SLOW = dict(bench="BeH2", device="linear", scale="smoke")

# --- 1. a daemon on a daemon thread, ephemeral port --------------------
# workers=0 compiles inline (no fork) — same admission/cache/dedup paths
# as `repro serve --workers 4`, handy for scripts and tests.

with BackgroundServer(workers=0, use_disk_cache=False) as daemon:
    client = daemon.client()
    print(f"daemon up on port {daemon.port}: {client.healthz()}")

    # --- 2. cold, then hot ---------------------------------------------

    cold = client.compile(**JOB)
    warm = client.compile(**JOB)
    print(f"\nfirst request:  served={cold.served!r}  "
          f"cnots={cold.result.metrics.cnot_gates}")
    print(f"second request: served={warm.served!r}  "
          f"cached={warm.result.cached}")
    requests = client.stats()["server"]["requests"]
    print(f"jobs_executed={requests['jobs_executed']} "
          "<- the hot hit never touched the pool")

    # --- 3. concurrent identical requests share one execution ----------

    replies = []

    def ask():
        with daemon.client() as c:
            replies.append(c.compile(**SLOW))

    threads = [threading.Thread(target=ask) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    served = sorted(reply.served for reply in replies)
    stats = client.stats()
    print(f"\n4 concurrent identical requests served as: {served}")
    print(f"dedup_hits={stats['server']['requests']['dedup_hits']}")

    # --- 4. a streamed batch, replies in submission order ---------------

    batch = [CompileJob(**JOB),
             CompileJob(bench="LiH", device="linear", scale="smoke",
                        blocks=4),
             CompileJob(**SLOW)]
    print("\nbatch:")
    for reply in client.batch(batch):
        metrics = reply.result.metrics
        print(f"  {reply.result.job.label():40s} served={reply.served:5s} "
              f"cnots={metrics.cnot_gates}")

    # --- 5. what a monitor sees ------------------------------------------

    stats = client.stats()
    hot = stats["hot_cache"]
    print(f"\nhot cache: {hot['entries']} entries, {hot['bytes']} bytes, "
          f"hit rate {hot['hit_rate']:.0%}")
    print(f"tenants: {stats['tenants']}")
    client.close()
# leaving the `with` drains in-flight work and stops the daemon
print("\ndaemon drained and stopped")
