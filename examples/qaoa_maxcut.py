"""QAOA MaxCut: compare the three QAOA compilation strategies.

Compiles a p=1 MaxCut cost layer with the per-string router (Paulihedral
stand-in), the 2QAN-like commutation-aware scheduler, and Tetris' QAOA path
(bridging + qubit reuse), then verifies on a small instance that the
compiled circuit actually optimizes cuts.

Run with::

    python examples/qaoa_maxcut.py
"""

import numpy as np

from repro.analysis import compile_and_measure, format_table
from repro.compiler import (
    PaulihedralCompiler,
    TetrisQAOACompiler,
    TwoQANLikeCompiler,
)
from repro.hardware import ibm_ithaca_65, linear
from repro.qaoa import benchmark_graph, edge_list, maxcut_blocks, random_graph
from repro.sim import Statevector


def compare_compilers() -> None:
    coupling = ibm_ithaca_65()
    rows = []
    for name in ("Rand-16", "REG3-16", "Rand-20"):
        graph = benchmark_graph(name, seed=0)
        blocks = maxcut_blocks(graph)
        row = {"bench": name, "edges": graph.number_of_edges()}
        for label, compiler in (
            ("per-string", PaulihedralCompiler()),
            ("2qan-like", TwoQANLikeCompiler(include_wrappers=False)),
            ("tetris-qaoa", TetrisQAOACompiler(include_wrappers=False)),
        ):
            record = compile_and_measure(compiler, blocks, coupling)
            row[f"{label}_cnot"] = record.metrics.cnot_gates
            row[f"{label}_depth"] = record.metrics.depth
        rows.append(row)
    print(format_table(rows))


def demo_cut_quality() -> None:
    """Simulate p=1 QAOA on 6 nodes and report the expected cut size."""
    graph = random_graph(6, 8, seed=3)
    edges = edge_list(graph)
    gamma, beta = 0.6, 0.35
    # MaxCut cost is C = sum (1 - Z_u Z_v)/2, so exp(-i gamma C) applies
    # exp(+i gamma/2 ZZ) per edge — a negative angle in our convention.
    blocks = maxcut_blocks(graph, gamma=-gamma)
    coupling = linear(7)
    result = TetrisQAOACompiler(include_wrappers=False).compile_timed(
        blocks, coupling
    )

    sim = Statevector(coupling.num_qubits)
    from repro.circuit.gate import Gate

    positions = [result.initial_layout.physical(q) for q in range(6)]
    for p in positions:
        sim.apply_gate(Gate("h", (p,)))
    sim.run(result.circuit)
    final = [result.final_layout.physical(q) for q in range(6)]
    for p in final:
        sim.apply_gate(Gate("rx", (p,), (2 * beta,)))

    probabilities = np.abs(sim.state) ** 2
    num_physical = coupling.num_qubits
    expected_cut = 0.0
    for basis, probability in enumerate(probabilities):
        if probability < 1e-12:
            continue
        bits = [(basis >> (num_physical - 1 - p)) & 1 for p in range(num_physical)]
        logical_bits = [bits[p] for p in final]
        cut = sum(1 for u, v in edges if logical_bits[u] != logical_bits[v])
        expected_cut += probability * cut
    uniform_cut = len(edges) / 2
    print(f"\n6-node MaxCut, {len(edges)} edges, p=1 QAOA "
          f"(gamma={gamma}, beta={beta}):")
    print(f"  expected cut under QAOA:    {expected_cut:.3f}")
    print(f"  expected cut under uniform: {uniform_cut:.3f}")
    assert expected_cut > uniform_cut, "QAOA should beat random guessing"


def main() -> None:
    compare_compilers()
    demo_cut_quality()


if __name__ == "__main__":
    main()
