#!/usr/bin/env python
"""CI smoke test for the serve daemon (``repro serve``).

Launches a real daemon subprocess on an ephemeral port, then drives it
over HTTP and asserts the serving milestone's acceptance pair:

1. a repeated identical request is a **hot-cache hit** — the reply says
   ``served: hot`` and the daemon's ``jobs_executed`` count does not
   move;
2. N concurrent identical cold requests **execute exactly once** — the
   dedup counter reads N-1;

plus `/healthz`, a `/stats` scrape (hot-cache hit rate present), a
streamed batch, and a clean drain via ``POST /shutdown``.

Usage (CI)::

    PYTHONPATH=src python tools/serve_smoke.py
"""

import json
import re
import subprocess
import sys
import tempfile
import threading
import time

from repro.serve import ReproClient, SERVED_DEDUP, SERVED_FRESH, SERVED_HOT
from repro.service import CompileJob

FAST = dict(bench="LiH", device="linear", scale="smoke", blocks=3)
SLOW = dict(bench="BeH2", device="linear", scale="smoke")

LISTENING = re.compile(r"listening on http://([\d.]+):(\d+)")


def check(label, ok, detail=""):
    print(f"{'ok  ' if ok else 'FAIL'} {label}" + (f" ({detail})" if detail else ""))
    if not ok:
        raise SystemExit(f"serve smoke failed: {label} {detail}")


def wait_until(predicate, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise SystemExit("serve smoke failed: timed out waiting for condition")


def main():
    cache_dir = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--workers", "1", "--cache-dir", cache_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        line = proc.stdout.readline()
        print(line.rstrip())
        match = LISTENING.search(line)
        check("daemon announces its port", match is not None, line.rstrip())
        host, port = match.group(1), int(match.group(2))
        client = ReproClient(host=host, port=port)

        check("healthz", client.healthz().get("ok") is True)

        # 1. fresh -> hot without touching the pool
        cold = client.compile(**FAST)
        check("cold request is fresh", cold.served == SERVED_FRESH,
              cold.served)
        check("cold result ok", cold.result.error is None)
        warm = client.compile(**FAST)
        check("repeat request is a hot-cache hit", warm.served == SERVED_HOT,
              warm.served)
        check("hot result identical",
              warm.result.to_json() == cold.result.to_json())
        stats = client.stats()
        executed = stats["server"]["requests"]["jobs_executed"]
        check("hot hit skipped the worker pool", executed == 1,
              f"jobs_executed={executed}")
        check("hot hit counted", stats["hot_cache"]["hits"] == 1,
              json.dumps(stats["hot_cache"]))

        # 2. concurrent identical cold requests dedup to one execution
        replies = []

        def request():
            with ReproClient(host=host, port=port) as c:
                replies.append(c.compile(**SLOW))

        leader = threading.Thread(target=request)
        leader.start()
        wait_until(
            lambda: client.stats()["server"]["queue"]["running"] >= 1
        )
        followers = [threading.Thread(target=request) for _ in range(3)]
        for thread in followers:
            thread.start()
        for thread in [leader, *followers]:
            thread.join(timeout=120)
        served = sorted(reply.served for reply in replies)
        check("concurrent identical requests dedup",
              served == [SERVED_DEDUP] * 3 + [SERVED_FRESH], str(served))
        stats = client.stats()
        dedup = stats["server"]["requests"]["dedup_hits"]
        executed = stats["server"]["requests"]["jobs_executed"]
        check("dedup counter is N-1", dedup == 3, f"dedup_hits={dedup}")
        check("the compile ran exactly once more", executed == 2,
              f"jobs_executed={executed}")

        # batch streaming + /stats scrape
        batch = list(client.batch([CompileJob(**FAST),
                                   CompileJob(**SLOW)]))
        check("batch streams every job", len(batch) == 2)
        check("batch served from the hot cache",
              [reply.served for reply in batch] == [SERVED_HOT, SERVED_HOT])
        check("stats exposes a hot hit rate",
              stats["hot_cache"]["hit_rate"] > 0,
              json.dumps(stats["hot_cache"]))
        check("stats exposes the disk cache",
              stats["disk_cache"]["disk"]["entries"] >= 2,
              json.dumps(stats["disk_cache"]))

        # clean shutdown
        client.shutdown()
        code = proc.wait(timeout=120)
        tail = proc.stdout.read()
        print(tail.rstrip())
        check("daemon drained and exited 0", code == 0, f"exit={code}")
        check("daemon logged the drain", "drained and stopped" in tail)
        print("serve smoke: all checks passed")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()


if __name__ == "__main__":
    sys.exit(main())
