#!/usr/bin/env python
"""CI smoke test for noise-aware compilation.

Drives the same command the docs advertise —

    repro compile chem:LiH --device heavy-hex:ibm-65 \
        --pipeline tetris:noise-aware+select=20

— through the CLI and asserts the noise milestone's acceptance
criteria on the smoke grid:

1. the CLI row carries an ``estimated_fidelity`` column;
2. for every smoke-grid workload, the noise-aware pipeline's estimated
   fidelity is **at least** the noise-blind pipeline's on the same
   calibration (strictly greater on the heavy-hex device, where qubit
   selection has a real spread to exploit);
3. calibrated and uncalibrated runs of the same cell have distinct
   content hashes (cache hygiene).

Usage (CI)::

    PYTHONPATH=src python tools/noise_smoke.py
"""

import subprocess
import sys

import repro
from repro.service import CompileJob

DEVICE = "heavy-hex:ibm-65"
BLIND = "tetris"
AWARE = "tetris:noise-aware+select=20"
WORKLOADS = ("chem:LiH", "chem:BeH2", "ucc:UCC-10")


def check(label, ok, detail=""):
    print(f"{'ok  ' if ok else 'FAIL'} {label}" + (f" ({detail})" if detail else ""))
    if not ok:
        sys.exit(1)


def cli_row():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "compile", "chem:LiH",
         "--device", DEVICE, "--pipeline", AWARE],
        capture_output=True, text=True, timeout=600,
    )
    check("repro compile exits 0", proc.returncode == 0, proc.stderr.strip()[:200])
    lines = [l for l in proc.stdout.splitlines() if l.strip()]
    header = lines[0].split()
    values = lines[-1].split()
    check("estimated_fidelity column present", "estimated_fidelity" in header)
    fidelity = float(values[header.index("estimated_fidelity")])
    check("estimated_fidelity is a probability", 0.0 < fidelity < 1.0,
          f"{fidelity:.3g}")


def fidelity_ranking():
    for bench in WORKLOADS:
        results = {}
        for spec in (BLIND, AWARE):
            result = repro.compile(
                bench=bench, compiler=spec, device=DEVICE, scale="smoke",
                calibration=0,
            )
            check(f"{bench} {spec} compiles", result.ok, result.error or "")
            check(f"{bench} {spec} reports fidelity",
                  result.estimated_fidelity is not None)
            results[spec] = result.estimated_fidelity
        check(
            f"{bench}: noise-aware >= blind",
            results[AWARE] >= results[BLIND],
            f"aware={results[AWARE]:.3g} blind={results[BLIND]:.3g} "
            f"gain={results[AWARE] / results[BLIND]:.1f}x",
        )


def hash_hygiene():
    plain = CompileJob(bench="chem:LiH", device=DEVICE, scale="smoke")
    calibrated = CompileJob(
        bench="chem:LiH", device=DEVICE, scale="smoke", calibration=0
    )
    check("calibrated hash differs from uncalibrated",
          plain.content_hash() != calibrated.content_hash())


def main():
    cli_row()
    fidelity_ranking()
    hash_hygiene()
    print("noise smoke: all checks passed")


if __name__ == "__main__":
    main()
