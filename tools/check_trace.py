#!/usr/bin/env python3
"""Validate a Chrome/Perfetto trace emitted by ``repro trace`` (CI gate).

Checks, in order:

1. the file is well-formed JSON with a non-empty ``traceEvents`` list;
2. every complete (``"ph": "X"``) event carries name/cat/ts/dur/pid/tid
   with sane numeric values;
3. spans nest on every (pid, tid) track — a span either contains or is
   disjoint from its neighbors, never partially overlaps — and every
   recorded ``parent_id`` resolves to a containing span in the same
   process;
4. with ``--reconcile``: every pass span that carries a
   ``profile_seconds`` attribute (attached when ``--profile-passes``
   measured the same interval with the pass manager's own clock) has a
   duration consistent with it;
5. with ``--require SUBSTR`` (repeatable): at least one event name
   contains each substring;
6. with ``--min-pids N``: events come from at least N distinct
   processes (main + workers for a traced batch run).

Stdlib only; exits non-zero with a message on the first failure.

Usage::

    python tools/check_trace.py trace.json --reconcile \
        --require pass: --require workload:build --min-pids 3
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Tuple

#: Slack (in microseconds) allowed when deciding whether spans nest —
#: covers float rounding in the exporter, not real overlap.
NEST_EPS_US = 5.0


def fail(message: str) -> "NoReturn":  # noqa: F821 — py3.8-friendly hint
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def load_events(path: str) -> List[dict]:
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        fail(f"{path}: not readable JSON: {exc}")
    if not isinstance(document, dict) or "traceEvents" not in document:
        fail(f"{path}: missing traceEvents (not a Chrome trace document)")
    events = document["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents empty")
    return events


def complete_events(events: List[dict]) -> List[dict]:
    spans = []
    for index, event in enumerate(events):
        if not isinstance(event, dict) or "ph" not in event:
            fail(f"event #{index} is not a phase-tagged object: {event!r}")
        if event["ph"] != "X":
            continue
        for key in ("name", "cat", "ts", "dur", "pid", "tid"):
            if key not in event:
                fail(f"X event #{index} ({event.get('name')!r}) missing {key!r}")
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            fail(f"X event {event['name']!r}: bad ts {event['ts']!r}")
        if not isinstance(event["dur"], (int, float)) or event["dur"] < 0:
            fail(f"X event {event['name']!r}: bad dur {event['dur']!r}")
        spans.append(event)
    if not spans:
        fail("no complete (ph=X) span events found")
    return spans


def check_nesting(spans: List[dict]) -> None:
    tracks: Dict[Tuple[int, int], List[dict]] = {}
    for span in spans:
        tracks.setdefault((span["pid"], span["tid"]), []).append(span)
    for (pid, tid), track in sorted(tracks.items()):
        # Longest-first among equal starts so a parent precedes its
        # children in stack order.
        track.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: List[dict] = []
        for span in track:
            while stack and span["ts"] >= stack[-1]["ts"] + stack[-1]["dur"] - NEST_EPS_US:
                stack.pop()
            if stack:
                parent_end = stack[-1]["ts"] + stack[-1]["dur"]
                if span["ts"] + span["dur"] > parent_end + NEST_EPS_US:
                    fail(
                        f"pid {pid} tid {tid}: span {span['name']!r} "
                        f"[{span['ts']}, {span['ts'] + span['dur']}] partially "
                        f"overlaps {stack[-1]['name']!r} ending at {parent_end}"
                    )
            stack.append(span)


def check_parent_links(spans: List[dict]) -> None:
    by_id: Dict[Tuple[int, int], dict] = {}
    for span in spans:
        span_id = span.get("args", {}).get("span_id")
        if span_id is not None:
            by_id[(span["pid"], span_id)] = span
    for span in spans:
        parent_id = span.get("args", {}).get("parent_id")
        if parent_id is None:
            continue
        parent = by_id.get((span["pid"], parent_id))
        if parent is None:
            fail(
                f"span {span['name']!r} references parent {parent_id} "
                f"not present in pid {span['pid']}"
            )
        if not (
            parent["ts"] - NEST_EPS_US <= span["ts"]
            and span["ts"] + span["dur"]
            <= parent["ts"] + parent["dur"] + NEST_EPS_US
        ):
            fail(
                f"span {span['name']!r} is not contained in its parent "
                f"{parent['name']!r} (pid {span['pid']})"
            )


def check_reconcile(spans: List[dict]) -> int:
    """Pass spans' durations must agree with the profiler's own clock."""
    checked = 0
    for span in spans:
        profile_seconds = span.get("args", {}).get("profile_seconds")
        if profile_seconds is None:
            continue
        dur_seconds = span["dur"] / 1e6
        # Both clocks time the same pass invocation; the span adds only
        # context-manager overhead.  Allow 10ms + 25% before failing.
        tolerance = 0.010 + 0.25 * profile_seconds
        if abs(dur_seconds - profile_seconds) > tolerance:
            fail(
                f"pass span {span['name']!r}: trace duration "
                f"{dur_seconds:.6f}s vs profiled {profile_seconds:.6f}s "
                f"(tolerance {tolerance:.6f}s)"
            )
        checked += 1
    if not checked:
        fail("--reconcile: no spans carried a profile_seconds attribute "
             "(was the traced run started with --profile-passes?)")
    return checked


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="trace.json path to validate")
    parser.add_argument("--require", action="append", default=[],
                        metavar="SUBSTR",
                        help="require at least one span name containing this "
                             "substring (repeatable)")
    parser.add_argument("--min-pids", type=int, default=1,
                        help="require spans from at least N distinct processes")
    parser.add_argument("--reconcile", action="store_true",
                        help="check pass spans against their profile_seconds "
                             "attributes")
    args = parser.parse_args(argv)

    events = load_events(args.trace)
    spans = complete_events(events)
    check_nesting(spans)
    check_parent_links(spans)

    names = {span["name"] for span in spans}
    for needle in args.require:
        if not any(needle in name for name in names):
            fail(f"no span name contains {needle!r} "
                 f"(saw: {', '.join(sorted(names))})")

    pids = {span["pid"] for span in spans}
    if len(pids) < args.min_pids:
        fail(f"expected spans from >= {args.min_pids} processes, "
             f"saw {len(pids)}: {sorted(pids)}")

    reconciled = check_reconcile(spans) if args.reconcile else 0
    message = (
        f"check_trace: OK: {len(spans)} spans, {len(pids)} process(es), "
        f"{len(names)} distinct names"
    )
    if args.reconcile:
        message += f", {reconciled} pass spans reconciled"
    print(message)
    return 0


if __name__ == "__main__":
    sys.exit(main())
