#!/usr/bin/env python
"""Markdown link checker for the repo's documentation.

Scans the given markdown files (or the repo's standard doc set when
called with no arguments) for inline links and validates every
*relative* link: the target file must exist, relative to the file the
link appears in.  External links (http/https/mailto) and pure anchors
are skipped — this is an offline check meant for CI.

Exit status: 0 when every relative link resolves, 1 otherwise (each
broken link is reported as ``file:line: target``).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links: [text](target) — images included.
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Fenced code blocks are skipped (links in examples aren't navigation).
FENCE = re.compile(r"^\s*(```|~~~)")

DEFAULT_DOCS = ("README.md", "ROADMAP.md", "CHANGES.md", "PAPER.md",
                "docs", "examples")


def iter_markdown(paths):
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.md"))
        elif path.suffix == ".md" and path.exists():
            yield path


def check_file(path: Path):
    broken = []
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                broken.append((lineno, target))
    return broken


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    paths = args or [p for p in DEFAULT_DOCS if Path(p).exists()]
    files = list(iter_markdown(paths))
    if not files:
        print("check_links: no markdown files found", file=sys.stderr)
        return 1
    failures = 0
    for path in files:
        for lineno, target in check_file(path):
            print(f"{path}:{lineno}: broken link -> {target}")
            failures += 1
    print(f"check_links: {len(files)} files, "
          f"{failures} broken link(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
