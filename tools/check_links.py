#!/usr/bin/env python
"""Markdown link and anchor checker for the repo's documentation.

Scans the given markdown files (or the repo's standard doc set when
called with no arguments) for inline links and validates:

- every *relative* link: the target file must exist, relative to the
  file the link appears in;
- every *anchor fragment*: a ``#section`` link (same-file) or a
  ``other.md#section`` link must name a real heading in the target
  file, using GitHub's heading-to-anchor slug algorithm (lowercase,
  markup stripped, punctuation dropped, spaces to hyphens, ``-1``/``-2``
  suffixes for duplicate headings).

External links (http/https/mailto) are skipped — this is an offline
check meant for CI.  Exit status: 0 when every link and anchor
resolves, 1 otherwise (each problem is reported as ``file:line:
target``).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links: [text](target) — images included.
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: ATX headings (``# ...`` .. ``###### ...``).
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")

#: Explicit HTML anchors (``<a name="..."></a>`` / ``id="..."``).
HTML_ANCHOR = re.compile(r"<a\s+(?:name|id)=\"([^\"]+)\"")

#: Fenced code blocks are skipped (links in examples aren't navigation).
FENCE = re.compile(r"^\s*(```|~~~)")

DEFAULT_DOCS = ("README.md", "ROADMAP.md", "CHANGES.md", "PAPER.md",
                "PAPERS.md", "docs", "examples")


def github_slug(heading: str) -> str:
    """GitHub's anchor id for one heading (before duplicate suffixing).

    Mirrors ``repro.report.render.github_slug`` — the renderer builds
    its summary-table links with the same algorithm this checker
    validates against (``tests/test_report.py`` asserts the two copies
    agree).  Literal underscores survive: GitHub keeps them in anchors.
    """
    slug = heading.strip().lower()
    slug = re.sub(r"[`*]", "", slug)        # inline markup markers
    slug = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", slug)  # links -> text
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def iter_markdown(paths):
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.md"))
        elif path.suffix == ".md" and path.exists():
            yield path


def collect_anchors(path: Path) -> set:
    """Every anchor id ``path`` defines (headings + explicit HTML ids)."""
    anchors = set()
    seen_slugs: dict = {}
    in_fence = False
    try:
        lines = path.read_text().splitlines()
    except OSError:
        return anchors
    for line in lines:
        if FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING.match(line)
        if match:
            slug = github_slug(match.group(2))
            count = seen_slugs.get(slug, 0)
            seen_slugs[slug] = count + 1
            anchors.add(slug if count == 0 else f"{slug}-{count}")
        for anchor in HTML_ANCHOR.findall(line):
            anchors.add(anchor)
    return anchors


def check_file(path: Path, anchor_cache: dict):
    """(lineno, target, reason) for every broken link/anchor in ``path``."""
    broken = []
    in_fence = False

    def anchors_of(target: Path) -> set:
        key = target.resolve()
        if key not in anchor_cache:
            anchor_cache[key] = collect_anchors(target)
        return anchor_cache[key]

    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):
                # Same-file anchor.
                if target[1:] not in anchors_of(path):
                    broken.append((lineno, target, "missing anchor"))
                continue
            file_part, _, fragment = target.partition("#")
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                broken.append((lineno, target, "missing file"))
                continue
            if fragment and resolved.suffix == ".md":
                if fragment not in anchors_of(resolved):
                    broken.append((lineno, target, "missing anchor"))
    return broken


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    paths = args or [p for p in DEFAULT_DOCS if Path(p).exists()]
    files = list(iter_markdown(paths))
    if not files:
        print("check_links: no markdown files found", file=sys.stderr)
        return 1
    failures = 0
    anchor_cache: dict = {}
    for path in files:
        for lineno, target, reason in check_file(path, anchor_cache):
            print(f"{path}:{lineno}: {reason} -> {target}")
            failures += 1
    print(f"check_links: {len(files)} files, "
          f"{failures} broken link(s)/anchor(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
