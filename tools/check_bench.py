"""Sanity gate over the committed benchmark JSON files.

Understands both ``BENCH_pauli.json`` (benchmarks/bench_pauli.py) and
``BENCH_passes.json`` (benchmarks/bench_passes.py) — the schemas share
the ``results`` rows (kernel, n, old/new seconds, speedup).  Fails
(exit 1) if any row is slower than its baseline, or if a targeted
kernel misses a required speedup floor or wall-clock ceiling.  CI runs::

    python tools/check_bench.py BENCH_pauli.json --min-speedup 1.0
    python tools/check_bench.py BENCH_passes.json \
        --target-kernel tetris-e2e --target-speedup 3 --target-n 20 \
        --ceiling-kernel tetris-e2e --ceiling-n 40 --max-seconds 9.9

The first asserts the packed-kernel acceptance target (>= 10x pairwise
at n = 64 with ``--target-speedup 10 --target-n 64``); the second the
whole-pass targets (UCC-20 end-to-end >= 3x, UCC-40 single-digit
seconds).
"""

from __future__ import annotations

import argparse
import json
import sys

#: Default --target-kernel set: the pairwise hot loops of bench_pauli.
TARGET_KERNELS = ("pairwise-similarity", "commutation-matrix")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="benchmark JSON to check")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="every row must beat its baseline by this "
                             "factor (default: not slower)")
    parser.add_argument("--target-speedup", type=float, default=0.0,
                        help="additional floor for the targeted kernels "
                             "at --target-n")
    parser.add_argument("--target-n", type=int, default=64)
    parser.add_argument("--target-kernel", action="append", default=None,
                        metavar="NAME",
                        help="kernel name the --target-speedup floor "
                             "applies to (repeatable; default: the "
                             "bench_pauli pairwise kernels)")
    parser.add_argument("--max-seconds", type=float, default=0.0,
                        help="wall-clock ceiling on new_seconds for the "
                             "--ceiling-kernel row at --ceiling-n")
    parser.add_argument("--ceiling-kernel", default="tetris-e2e")
    parser.add_argument("--ceiling-n", type=int, default=40)
    args = parser.parse_args(argv)

    target_kernels = tuple(args.target_kernel or TARGET_KERNELS)

    with open(args.path) as handle:
        payload = json.load(handle)
    results = payload.get("results", [])
    if not results:
        print(f"FAIL: {args.path} holds no results")
        return 1

    failures = []
    ceiling_seen = False
    for row in results:
        label = f"{row['kernel']} @ n={row['n']}"
        if row["speedup"] < args.min_speedup:
            failures.append(
                f"{label}: {row['speedup']:.2f}x < min {args.min_speedup:g}x"
            )
        if (
            args.target_speedup
            and row["kernel"] in target_kernels
            and row["n"] == args.target_n
            and row["speedup"] < args.target_speedup
        ):
            failures.append(
                f"{label}: {row['speedup']:.2f}x < target {args.target_speedup:g}x"
            )
        if (
            args.max_seconds
            and row["kernel"] == args.ceiling_kernel
            and row["n"] == args.ceiling_n
        ):
            ceiling_seen = True
            if row["new_seconds"] > args.max_seconds:
                failures.append(
                    f"{label}: {row['new_seconds']:.2f}s exceeds the "
                    f"{args.max_seconds:g}s ceiling"
                )
        print(f"{label}: {row['speedup']:.1f}x "
              f"({row['old_seconds']:.6f}s -> {row['new_seconds']:.6f}s)")

    if args.max_seconds and not ceiling_seen:
        # Quick benchmark runs omit the big sizes; note it, don't fail.
        print(f"note: no {args.ceiling_kernel} @ n={args.ceiling_n} row; "
              "ceiling not checked")
    if failures:
        print()
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"ok: {len(results)} kernel cells pass "
          f"(min-speedup {args.min_speedup:g}x"
          + (f", target {args.target_speedup:g}x at n={args.target_n}"
             if args.target_speedup else "")
          + (f", ceiling {args.max_seconds:g}s" if ceiling_seen else "")
          + ")")
    return 0


if __name__ == "__main__":
    sys.exit(main())
