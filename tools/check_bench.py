"""Sanity gate over a BENCH_pauli.json emitted by benchmarks/bench_pauli.py.

Fails (exit 1) if any packed kernel is slower than its character-loop
baseline, or if the headline pairwise kernels miss a required speedup
floor.  CI runs::

    python tools/check_bench.py BENCH_pauli.json --min-speedup 1.0

The refactor's acceptance target (>= 10x on the pairwise kernels at
n = 64) can be asserted with ``--target-speedup 10 --target-n 64``.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Kernels the --target-speedup floor applies to (the pairwise hot loops).
TARGET_KERNELS = ("pairwise-similarity", "commutation-matrix")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="BENCH_pauli.json to check")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="every kernel must beat the char baseline by "
                             "this factor (default: not slower)")
    parser.add_argument("--target-speedup", type=float, default=0.0,
                        help="additional floor for the pairwise kernels "
                             "at --target-n qubits")
    parser.add_argument("--target-n", type=int, default=64)
    args = parser.parse_args(argv)

    with open(args.path) as handle:
        payload = json.load(handle)
    results = payload.get("results", [])
    if not results:
        print(f"FAIL: {args.path} holds no results")
        return 1

    failures = []
    for row in results:
        label = f"{row['kernel']} @ n={row['n']}"
        if row["speedup"] < args.min_speedup:
            failures.append(
                f"{label}: {row['speedup']:.2f}x < min {args.min_speedup:g}x"
            )
        if (
            args.target_speedup
            and row["kernel"] in TARGET_KERNELS
            and row["n"] == args.target_n
            and row["speedup"] < args.target_speedup
        ):
            failures.append(
                f"{label}: {row['speedup']:.2f}x < target {args.target_speedup:g}x"
            )
        print(f"{label}: {row['speedup']:.1f}x "
              f"({row['old_seconds']:.6f}s -> {row['new_seconds']:.6f}s)")

    if failures:
        print()
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"ok: {len(results)} kernel cells pass "
          f"(min-speedup {args.min_speedup:g}x"
          + (f", target {args.target_speedup:g}x at n={args.target_n}"
             if args.target_speedup else "")
          + ")")
    return 0


if __name__ == "__main__":
    sys.exit(main())
