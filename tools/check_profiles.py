#!/usr/bin/env python
"""CI check: profiled batch output reconciles with end-to-end metrics.

Usage: ``check_profiles.py results.jsonl [results.csv]``

Validates that every JSONL row produced by
``repro batch --profile-passes`` carries a ``profile`` object whose
per-pass deltas telescope to the row's metrics, and (when a CSV is
given) that the flattened ``pass_cnot_delta`` column sums to the
``cnot`` column in every row.
"""

from __future__ import annotations

import csv
import json
import sys


def check_jsonl(path: str) -> int:
    count = 0
    for line in open(path):
        row = json.loads(line)
        if row.get("error"):
            continue  # errored jobs carry no metrics or profile
        assert "profile" in row, f"JSONL row lacks a profile: {row['job']}"
        metrics = row["metrics"]
        passes = row["profile"]["passes"]
        for axis, key in (("cnot", "cnot_gates"),
                          ("one_qubit", "one_qubit_gates"),
                          ("depth", "depth")):
            total = sum(p[axis][1] - p[axis][0] for p in passes)
            assert total == metrics[key], (
                f"{row['job']}: {axis} deltas sum to {total}, "
                f"metrics say {metrics[key]}"
            )
        count += 1
    return count


def check_csv(path: str) -> int:
    count = 0
    for row in csv.DictReader(open(path)):
        if row.get("error") or not row.get("pass_cnot_delta"):
            continue  # errored or unprofiled rows have empty pass_* cells
        deltas = [int(d) for d in row["pass_cnot_delta"].split(";")]
        assert sum(deltas) == int(row["cnot"]), (
            f"per-pass deltas {sum(deltas)} != end-to-end cnot {row['cnot']}"
        )
        count += 1
    return count


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        print("usage: check_profiles.py results.jsonl [results.csv]",
              file=sys.stderr)
        return 2
    jsonl_rows = check_jsonl(args[0])
    csv_rows = check_csv(args[1]) if len(args) > 1 else 0
    if jsonl_rows == 0:
        print("check_profiles: no successful profiled rows found",
              file=sys.stderr)
        return 1
    print(f"profiles reconcile: {jsonl_rows} JSONL rows, {csv_rows} CSV rows")
    return 0


if __name__ == "__main__":
    sys.exit(main())
